package project

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: the expected-O(n) solver and the O(n log n) sweep agree — not
// necessarily on λ (ties can differ on flat segments) but always on the
// achieved constraint value and the induced x.
func TestQuickLinearMatchesSweep(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		y := make([]float64, n)
		w := make([]float64, n)
		total := 0.0
		for i := range y {
			y[i] = rng.NormFloat64() * 3
			w[i] = rng.Float64()*2 + 0.01
			total += w[i]
		}
		c := (rng.Float64()*2 - 1) * total * 0.9
		lamA, okA := solveLambda(y, w, c)
		lamB, okB := SolveLambdaLinear(y, w, c, seed+1)
		if okA != okB {
			t.Logf("seed %d: feasibility disagrees: sweep=%v linear=%v", seed, okA, okB)
			return false
		}
		if !okA {
			return true
		}
		evalAt := func(lam float64) float64 {
			h := 0.0
			for i := range y {
				v := y[i] - lam*w[i]
				if v > 1 {
					v = 1
				} else if v < -1 {
					v = -1
				}
				h += w[i] * v
			}
			return h
		}
		tol := 1e-6 * math.Max(1, total)
		if math.Abs(evalAt(lamA)-c) > tol || math.Abs(evalAt(lamB)-c) > tol {
			t.Logf("seed %d: targets missed: sweep %g linear %g want %g",
				seed, evalAt(lamA), evalAt(lamB), c)
			return false
		}
		// The induced x must coincide (projection is unique).
		for i := range y {
			xa := clampV(y[i] - lamA*w[i])
			xb := clampV(y[i] - lamB*w[i])
			if math.Abs(xa-xb) > 1e-5 {
				t.Logf("seed %d: x differs at %d: %g vs %g", seed, i, xa, xb)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func clampV(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

func TestLinearInfeasibleAndEdgeCases(t *testing.T) {
	y := []float64{2, 2, 0}
	w := []float64{1, 1, 1}
	if _, ok := SolveLambdaLinear(y, w, 3.5, 1); ok {
		t.Fatal("c beyond +Σw should be infeasible")
	}
	if _, ok := SolveLambdaLinear(y, w, -3.5, 1); ok {
		t.Fatal("c beyond −Σw should be infeasible")
	}
	lam, ok := SolveLambdaLinear(y, w, 1, 1)
	if !ok || math.Abs(lam-1) > 1e-9 {
		t.Fatalf("lam=%g ok=%v, want 1", lam, ok)
	}
	if _, ok := SolveLambdaLinear([]float64{5}, []float64{0}, 0, 1); !ok {
		t.Fatal("all-zero weights with c=0 should be feasible")
	}
	if _, ok := SolveLambdaLinear([]float64{5}, []float64{0}, 2, 1); ok {
		t.Fatal("all-zero weights with c=2 should be infeasible")
	}
}

func TestLinearLargeInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 20000
	y := make([]float64, n)
	w := make([]float64, n)
	total := 0.0
	for i := range y {
		y[i] = rng.NormFloat64() * 2
		w[i] = rng.Float64() + 0.01
		total += w[i]
	}
	c := 0.01 * total
	lam, ok := SolveLambdaLinear(y, w, c, 7)
	if !ok {
		t.Fatal("large instance infeasible")
	}
	got := 0.0
	for i := range y {
		got += w[i] * clampV(y[i]-lam*w[i])
	}
	if math.Abs(got-c) > 1e-6*total {
		t.Fatalf("target missed: %g vs %g", got, c)
	}
}

// BenchmarkSolveLambda1D compares the O(n log n) sweep with the expected
// O(n) quickselect variant — the ablation the paper's §2.3 invites.
func BenchmarkSolveLambda1DSweep(b *testing.B) {
	y, w, c := benchInstance1D()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := solveLambda(y, w, c); !ok {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkSolveLambda1DLinear(b *testing.B) {
	y, w, c := benchInstance1D()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := SolveLambdaLinear(y, w, c, int64(i)); !ok {
			b.Fatal("infeasible")
		}
	}
}

func benchInstance1D() ([]float64, []float64, float64) {
	rng := rand.New(rand.NewSource(5))
	n := 100000
	y := make([]float64, n)
	w := make([]float64, n)
	total := 0.0
	for i := range y {
		y[i] = rng.NormFloat64() * 2
		w[i] = rng.Float64() + 0.01
		total += w[i]
	}
	return y, w, 0.005 * total
}
