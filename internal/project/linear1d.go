package project

import (
	"math"
	"math/rand"
)

// SolveLambdaLinear finds λ with H(λ) = Σ_i w_i·clamp(y_i − λ·w_i) = c in
// expected O(n) time, the improvement over the O(n log n) sorted sweep that
// the paper cites from Maculan et al. [31] (§2.3). Instead of sorting all 2n
// breakpoints, a random pivot breakpoint is evaluated per round; since H is
// monotone, half the breakpoints are discarded and every coordinate whose
// clamp state becomes determined on the surviving bracket is folded into
// constant/linear accumulators — a quickselect-style recursion with
// geometrically shrinking active sets.
//
// Returns false when c is outside the achievable range [−Σw, +Σw].
// Cross-validated against solveLambda in tests; BenchmarkSolveLambda1D
// compares the two exact 1-D algorithms.
func SolveLambdaLinear(y, w []float64, c float64, seed int64) (float64, bool) {
	totalW := 0.0
	active := make([]int32, 0, len(y))
	for i := range y {
		if w[i] > 0 {
			totalW += w[i]
			active = append(active, int32(i))
		}
	}
	scale := math.Max(1, totalW)
	eps := 1e-12 * scale
	if c > totalW+eps || c < -totalW-eps {
		return 0, false
	}
	if len(active) == 0 {
		if math.Abs(c) <= eps {
			return 0, true
		}
		return 0, false
	}

	rng := rand.New(rand.NewSource(seed))
	lo, hi := math.Inf(-1), math.Inf(1)
	// H(λ) = accConst + accLin − accSlope·λ + Σ_active h_i(λ) on (lo, hi).
	accConst, accLin, accSlope := 0.0, 0.0, 0.0
	lower := func(i int32) float64 { return (y[i] - 1) / w[i] }
	upper := func(i int32) float64 { return (y[i] + 1) / w[i] }
	hAt := func(lam float64) float64 {
		h := accConst + accLin - accSlope*lam
		for _, i := range active {
			v := y[i] - lam*w[i]
			if v > 1 {
				v = 1
			} else if v < -1 {
				v = -1
			}
			h += w[i] * v
		}
		return h
	}

	for len(active) > 0 {
		// Random pivot breakpoint strictly inside the bracket (every active
		// coordinate has at least one).
		ci := active[rng.Intn(len(active))]
		pivot := lower(ci)
		if pivot <= lo || pivot >= hi {
			pivot = upper(ci)
		}
		// H is non-increasing: keep the half that can still contain λ*.
		if hAt(pivot) >= c {
			lo = pivot
		} else {
			hi = pivot
		}
		kept := active[:0]
		for _, i := range active {
			a, b := lower(i), upper(i)
			switch {
			case (a > lo && a < hi) || (b > lo && b < hi):
				kept = append(kept, i)
			case b <= lo:
				accConst -= w[i] // clamped at −1 on the whole bracket
			case a >= hi:
				accConst += w[i] // clamped at +1 on the whole bracket
			default: // a <= lo && b >= hi: linear on the whole bracket
				accLin += w[i] * y[i]
				accSlope += w[i] * w[i]
			}
		}
		active = kept
	}

	// No breakpoints left inside (lo, hi): H is a single linear piece.
	if accSlope > 0 {
		lam := (accConst + accLin - c) / accSlope
		if lam < lo {
			lam = lo
		} else if lam > hi {
			lam = hi
		}
		return lam, true
	}
	mid := 0.0
	switch {
	case !math.IsInf(lo, 0) && !math.IsInf(hi, 0):
		mid = (lo + hi) / 2
	case !math.IsInf(lo, 0):
		mid = lo
	case !math.IsInf(hi, 0):
		mid = hi
	}
	return mid, math.Abs(accConst+accLin-c) <= 1e-6*scale
}
