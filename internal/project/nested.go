package project

import (
	"math"
)

// nested implements the Appendix A.1 nested binary search: for every sign
// guess, the active equality system h(j)(λ) = c_j is solved by binary
// search on λ1, recursively solving the (d−1)-dimensional system for the
// remaining multipliers at each probe (∆_t is well-defined and monotone by
// Lemmas A.2–A.5). The λ precision is delta; brackets are found by
// geometric expansion, the open question the paper notes in §5.
//
// The cost is O(n · Π_j log(r_j/δ)) per guess, exponential in d, so this
// method is meant for small instances, cross-checking the fast exact
// projections, and the d = 3,4 experiments at modest n.
func nested(dst, y []float64, cons []Constraint, delta float64, st *State) error {
	d := len(cons)
	if d == 0 {
		copy(dst, y)
		BoxClamp(dst)
		return nil
	}
	if d > 6 {
		return ErrInfeasible // 3^d sign guesses; refuse absurd dimensions
	}
	copy(dst, y)
	BoxClamp(dst)
	tol := feasTol(cons...)
	viol := make([]int, d)
	allOK := true
	for j, c := range cons {
		viol[j] = violSign(c.Value(dst), c)
		if viol[j] != 0 {
			allOK = false
		}
	}
	if allOK {
		if st != nil {
			st.Lambda = st.Lambda[:0]
			for range cons {
				st.Lambda = append(st.Lambda, 0)
			}
		}
		return nil
	}

	solver := &nestedSolver{y: y, cons: cons, delta: delta}
	for _, guess := range signGuessesD(viol) {
		var active []int
		var targets []float64
		for j, s := range guess {
			if s != 0 {
				active = append(active, j)
				targets = append(targets, faceTarget(cons[j], s))
			}
		}
		if len(active) == 0 {
			continue
		}
		lams, ok := solver.solve(active, targets)
		if !ok {
			continue
		}
		// Verify sign conditions and inactive slabs.
		good := true
		for a, j := range active {
			if !signOK(lams[a], guess[j]) {
				good = false
				break
			}
		}
		if !good {
			continue
		}
		solver.apply(dst, active, lams)
		for j, s := range guess {
			if s == 0 && !cons[j].Satisfied(dst, 100*tol) {
				good = false
				break
			}
		}
		// Active equalities must actually be met (bracket expansion can fail
		// silently on saturated h).
		for a, j := range active {
			if math.Abs(cons[j].Value(dst)-targets[a]) > 1000*tol {
				good = false
				break
			}
		}
		if !good {
			continue
		}
		if st != nil {
			st.Lambda = st.Lambda[:0]
			for j := range cons {
				l := 0.0
				for a, aj := range active {
					if aj == j {
						l = lams[a]
					}
				}
				st.Lambda = append(st.Lambda, l)
			}
		}
		return nil
	}
	return ErrInfeasible
}

// signGuessesD enumerates {−1,0,+1}^d \ {0}, ordered by Hamming distance to
// the observed violation pattern.
func signGuessesD(viol []int) [][]int {
	d := len(viol)
	total := 1
	for i := 0; i < d; i++ {
		total *= 3
	}
	type scored struct {
		g    []int
		dist int
	}
	all := make([]scored, 0, total-1)
	for code := 0; code < total; code++ {
		g := make([]int, d)
		c := code
		zero := true
		dist := 0
		for j := 0; j < d; j++ {
			g[j] = c%3 - 1 // −1, 0, +1
			c /= 3
			if g[j] != 0 {
				zero = false
			}
			if g[j] != viol[j] {
				dist++
			}
		}
		if zero {
			continue
		}
		all = append(all, scored{g, dist})
	}
	// Stable selection sort by distance keeps enumeration deterministic.
	out := make([][]int, 0, len(all))
	for dist := 0; dist <= d; dist++ {
		for _, s := range all {
			if s.dist == dist {
				out = append(out, s.g)
			}
		}
	}
	return out
}

type nestedSolver struct {
	y     []float64
	cons  []Constraint
	delta float64
}

// apply writes x = clamp(y − Σ_a λ_a·w_active[a]) into dst.
func (ns *nestedSolver) apply(dst []float64, active []int, lams []float64) {
	for i := range ns.y {
		v := ns.y[i]
		for a, j := range active {
			v -= lams[a] * ns.cons[j].W[i]
		}
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		dst[i] = v
	}
}

// hValue evaluates h(j) at the multipliers (active dims only).
func (ns *nestedSolver) hValue(j int, active []int, lams []float64) float64 {
	w := ns.cons[j].W
	s := 0.0
	for i := range ns.y {
		v := ns.y[i]
		for a, aj := range active {
			v -= lams[a] * ns.cons[aj].W[i]
		}
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		s += w[i] * v
	}
	return s
}

// solve finds multipliers for the equality system over the active dims.
func (ns *nestedSolver) solve(active []int, targets []float64) ([]float64, bool) {
	lams := make([]float64, len(active))
	ok := ns.solveLevel(0, active, targets, lams)
	return lams, ok
}

// solveLevel fixes λ for active[level] by binary search, recursively solving
// deeper levels at each probe. The deepest level uses the exact 1-D sweep.
func (ns *nestedSolver) solveLevel(level int, active []int, targets []float64, lams []float64) bool {
	if level == len(active)-1 {
		// Exact 1-D solve on the shifted point.
		j := active[level]
		yShift := make([]float64, len(ns.y))
		for i := range ns.y {
			v := ns.y[i]
			for a := 0; a < level; a++ {
				v -= lams[a] * ns.cons[active[a]].W[i]
			}
			yShift[i] = v
		}
		lam, ok := solveLambda(yShift, ns.cons[j].W, targets[level])
		if !ok {
			return false
		}
		lams[level] = lam
		return true
	}

	evalAt := func(lam float64) (float64, bool) {
		lams[level] = lam
		if !ns.solveLevel(level+1, active, targets, lams) {
			return 0, false
		}
		return ns.hValue(active[level], active, lams), true
	}

	c := targets[level]
	half := 1.0
	var lo, hi, dLo, dHi float64
	bracketed := false
	for try := 0; try < 60; try++ {
		lo, hi = -half, half
		var ok1, ok2 bool
		dLo, ok1 = evalAt(lo)
		dHi, ok2 = evalAt(hi)
		if !ok1 || !ok2 {
			return false
		}
		if math.Min(dLo, dHi) <= c && c <= math.Max(dLo, dHi) {
			bracketed = true
			break
		}
		half *= 4
	}
	if !bracketed {
		if math.Abs(dLo-c) <= 1e-7*math.Max(1, math.Abs(c)) {
			_, ok := evalAt(0)
			return ok
		}
		return false
	}
	increasing := dHi >= dLo
	for hi-lo > ns.delta {
		mid := (lo + hi) / 2
		if mid == lo || mid == hi {
			break
		}
		dMid, ok := evalAt(mid)
		if !ok {
			return false
		}
		if (dMid < c) == increasing {
			lo = mid
		} else {
			hi = mid
		}
	}
	_, ok := evalAt((lo + hi) / 2)
	return ok
}
