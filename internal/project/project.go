// Package project implements the projection step of Algorithm 1 (Line 6):
// projecting a point y ∈ Rⁿ onto the feasible region
//
//	K = B∞ ∩ ⋂_j S^j  with  B∞ = [-1,1]ⁿ,  S^j = {x : Lo_j ≤ Σ_i w(j)_i·x_i ≤ Hi_j}.
//
// Four algorithms are provided, mirroring Table 1 of the paper:
//
//   - exact projection for d ≤ 2 (sorted-breakpoint sweep for d = 1; strip
//     bisection plus the Appendix A.2 region walk for d = 2), reduced to
//     equality-constrained instances via the 3^d sign-guess argument of §2.2;
//   - nested binary search for arbitrary d (Appendix A.1), arbitrary precision;
//   - alternating projections, including the "one-shot" single-pass variant
//     the paper uses inside GD iterations (§3.1);
//   - Dykstra's algorithm, which converges to the true projection.
//
// All slab constraints are intervals [Lo, Hi]; the symmetric ε-balance slab
// of the paper is Lo = −ε·W, Hi = +ε·W, and the asymmetric intervals arise
// from vertex fixing and non-power-of-two recursive splits.
package project

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mdbgp/internal/vecmath"
)

// Constraint is one balance slab Lo ≤ Σ_i W[i]·x[i] ≤ Hi with W[i] ≥ 0.
type Constraint struct {
	W      []float64
	Lo, Hi float64
}

// Center returns the midpoint of the slab, the target used by the paper's
// "project on S^j_0" variant of alternating projections.
func (c Constraint) Center() float64 { return (c.Lo + c.Hi) / 2 }

// Value returns Σ_i W[i]·x[i].
func (c Constraint) Value(x []float64) float64 {
	s := 0.0
	for i, w := range c.W {
		s += w * x[i]
	}
	return s
}

// Satisfied reports whether x lies inside the slab, with absolute slack tol.
func (c Constraint) Satisfied(x []float64, tol float64) bool {
	v := c.Value(x)
	return v >= c.Lo-tol && v <= c.Hi+tol
}

// WeightNormSq returns Σ_i W[i]².
func (c Constraint) WeightNormSq() float64 {
	s := 0.0
	for _, w := range c.W {
		s += w * w
	}
	return s
}

// TotalWeight returns Σ_i W[i].
func (c Constraint) TotalWeight() float64 {
	s := 0.0
	for _, w := range c.W {
		s += w
	}
	return s
}

// Method selects a projection algorithm.
type Method int

const (
	// AlternatingOneShot performs a single pass of hyperplane projections
	// followed by a cube clamp — the paper's default inside GD iterations.
	AlternatingOneShot Method = iota
	// Alternating runs alternating projections to convergence.
	Alternating
	// DykstraMethod runs Dykstra's algorithm, converging to the exact
	// projection for any d.
	DykstraMethod
	// Exact computes the exact projection: closed-form sweeps for d ≤ 2,
	// Dykstra with tight tolerance for d > 2 (the paper reports Dykstra and
	// exact projection coincide; see §3.1).
	Exact
	// Nested runs the Appendix A.1 nested binary search to precision Delta.
	Nested
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case AlternatingOneShot:
		return "alternating-oneshot"
	case Alternating:
		return "alternating"
	case DykstraMethod:
		return "dykstra"
	case Exact:
		return "exact"
	case Nested:
		return "nested"
	}
	return fmt.Sprintf("method(%d)", int(m))
}

// ParseMethod converts a string produced by Method.String back to a Method.
func ParseMethod(s string) (Method, error) {
	for _, m := range []Method{AlternatingOneShot, Alternating, DykstraMethod, Exact, Nested} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("project: unknown method %q", s)
}

// Options configures a projection call.
type Options struct {
	Method Method
	// MaxIter bounds iterative methods (alternating, Dykstra). 0 = 200.
	MaxIter int
	// Tol is the convergence/feasibility tolerance. 0 = 1e-9 (absolute, in
	// units of the slab widths and coordinate moves).
	Tol float64
	// Center makes alternating projections target the slab midpoint
	// hyperplane S^j_0 instead of the nearest slab face; the paper reports
	// slightly better balance with this variant. Default false means
	// nearest-face.
	Center bool
	// Delta is the λ precision of the nested binary search. 0 = 1e-10.
	Delta float64
	// Workers is the number of goroutines used for the coordinate-wise
	// work (hyperplane/slab steps, cube clamps, the exact-1D apply) and the
	// chunk-ordered reductions; 0 selects GOMAXPROCS, 1 forces the serial
	// path. Results are bit-identical for any worker count.
	Workers int
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 200
	}
	return o.MaxIter
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return 1e-9
	}
	return o.Tol
}

func (o Options) delta() float64 {
	if o.Delta <= 0 {
		return 1e-10
	}
	return o.Delta
}

func (o Options) pool() *vecmath.Pool { return vecmath.NewPool(o.Workers) }

// State carries warm-start information between successive projections of
// slowly moving points (the GD iterates). It is optional; nil disables warm
// starting.
type State struct {
	// Lambda holds the dual multipliers found by the previous exact
	// projection, used to seed bracket expansion.
	Lambda []float64
}

// ErrInfeasible is returned when the feasible region K is empty or the
// target cannot be reached (e.g. |c| > Σw for a slab).
var ErrInfeasible = errors.New("project: constraints infeasible")

// BoxClamp projects x onto the cube B∞ in place.
func BoxClamp(x []float64) {
	for i, v := range x {
		if v > 1 {
			x[i] = 1
		} else if v < -1 {
			x[i] = -1
		}
	}
}

// Feasible reports whether x lies in K up to tolerance tol.
func Feasible(x []float64, cons []Constraint, tol float64) bool {
	for _, v := range x {
		if v > 1+tol || v < -1-tol {
			return false
		}
	}
	for _, c := range cons {
		if !c.Satisfied(x, tol) {
			return false
		}
	}
	return true
}

// Project projects y onto K and writes the result into dst (dst may alias
// y). The warm-start state st may be nil.
func Project(dst, y []float64, cons []Constraint, opt Options, st *State) error {
	if len(dst) != len(y) {
		return fmt.Errorf("project: dst len %d != y len %d", len(dst), len(y))
	}
	for j, c := range cons {
		if len(c.W) != len(y) {
			return fmt.Errorf("project: constraint %d weight len %d != %d", j, len(c.W), len(y))
		}
		if c.Lo > c.Hi {
			return fmt.Errorf("project: constraint %d has Lo %g > Hi %g", j, c.Lo, c.Hi)
		}
		for i, w := range c.W {
			if w < 0 || math.IsNaN(w) {
				return fmt.Errorf("project: constraint %d weight[%d] = %g, want >= 0", j, i, w)
			}
		}
	}
	switch opt.Method {
	case AlternatingOneShot, Alternating:
		return alternating(dst, y, cons, opt, opt.pool())
	case DykstraMethod:
		return dykstra(dst, y, cons, opt.maxIter(), opt.tol(), opt.pool())
	case Exact:
		return exact(dst, y, cons, opt, st)
	case Nested:
		return nested(dst, y, cons, opt.delta(), st)
	}
	return fmt.Errorf("project: unknown method %v", opt.Method)
}

// --- Pooled coordinate-wise helpers --------------------------------------
//
// These shard the coordinate loops of the projection steps over a
// vecmath.Pool. All reductions are chunk-ordered, so for a fixed input the
// projected point is bit-identical at every worker count. (The serial
// hyperplaneProject below survives for its direct test coverage; the d ≤ 2
// exact machinery keeps its own specialized sweeps.)

// valueP is Constraint.Value with a chunk-ordered reduction.
func valueP(c Constraint, x []float64, p *vecmath.Pool) float64 {
	return vecmath.DotPool(c.W, x, p)
}

// hyperplaneProjectP is hyperplaneProject with the ‖w‖² and ⟨w,x⟩ sums
// fused into one chunked pass and the update sharded over the pool.
func hyperplaneProjectP(x []float64, w []float64, c float64, p *vecmath.Pool) {
	nsq, v := p.ReduceSum2(len(x), func(lo, hi int) (float64, float64) {
		sn, sv := 0.0, 0.0
		for i := lo; i < hi; i++ {
			sn += w[i] * w[i]
			sv += w[i] * x[i]
		}
		return sn, sv
	})
	if nsq == 0 {
		return
	}
	alpha := (v - c) / nsq
	p.For(len(x), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] -= alpha * w[i]
		}
	})
}

// slabProjectP moves x onto the nearest face of the slab if it is outside,
// and leaves it unchanged otherwise.
func slabProjectP(x []float64, con Constraint, p *vecmath.Pool) {
	v := valueP(con, x, p)
	switch {
	case v > con.Hi:
		hyperplaneProjectP(x, con.W, con.Hi, p)
	case v < con.Lo:
		hyperplaneProjectP(x, con.W, con.Lo, p)
	}
}

// feasibleP is Feasible with pooled constraint evaluations. The box check
// is a pure comparison scan, so it needs no reduction ordering.
func feasibleP(x []float64, cons []Constraint, tol float64, p *vecmath.Pool) bool {
	for _, v := range x {
		if v > 1+tol || v < -1-tol {
			return false
		}
	}
	for _, c := range cons {
		v := valueP(c, x, p)
		if v < c.Lo-tol || v > c.Hi+tol {
			return false
		}
	}
	return true
}

// hyperplaneProject moves x onto {Σ w·x = c} by the orthogonal step
// x ← x − ((⟨w,x⟩−c)/‖w‖²)·w. A zero-weight constraint leaves x unchanged.
func hyperplaneProject(x []float64, w []float64, c float64) {
	nsq := 0.0
	v := 0.0
	for i, wi := range w {
		nsq += wi * wi
		v += wi * x[i]
	}
	if nsq == 0 {
		return
	}
	alpha := (v - c) / nsq
	for i, wi := range w {
		x[i] -= alpha * wi
	}
}

// alternating implements (one-shot) alternating projections: sequentially
// project onto each slab (or its center hyperplane when opt.Center) and then
// onto the cube, once for one-shot mode or until the point is feasible.
func alternating(dst, y []float64, cons []Constraint, opt Options, pool *vecmath.Pool) error {
	copy(dst, y)
	passes := 1
	if opt.Method == Alternating {
		passes = opt.maxIter()
	}
	tol := opt.tol()
	for p := 0; p < passes; p++ {
		for _, con := range cons {
			if opt.Center {
				hyperplaneProjectP(dst, con.W, con.Center(), pool)
			} else {
				slabProjectP(dst, con, pool)
			}
		}
		vecmath.ClampPool(dst, pool)
		if opt.Method == Alternating && feasibleP(dst, cons, tol, pool) {
			return nil
		}
	}
	return nil
}

// dykstra implements Dykstra's projection algorithm over the cube and the d
// slabs; unlike plain alternating projections it converges to the exact
// Euclidean projection onto the intersection.
func dykstra(dst, y []float64, cons []Constraint, maxIter int, tol float64, pool *vecmath.Pool) error {
	n := len(y)
	copy(dst, y)
	sets := len(cons) + 1
	corr := make([][]float64, sets)
	for s := range corr {
		corr[s] = make([]float64, n)
	}
	z := make([]float64, n)
	prev := make([]float64, n)
	for it := 0; it < maxIter; it++ {
		copy(prev, dst)
		for s := 0; s < sets; s++ {
			cs := corr[s]
			pool.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					z[i] = dst[i] + cs[i]
					dst[i] = z[i]
				}
			})
			if s < len(cons) {
				slabProjectP(dst, cons[s], pool)
			} else {
				vecmath.ClampPool(dst, pool)
			}
			pool.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					cs[i] = z[i] - dst[i]
				}
			})
		}
		change := pool.ReduceSum(n, func(lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				d := dst[i] - prev[i]
				s += d * d
			}
			return s
		})
		if change < tol*tol && feasibleP(dst, cons, 10*tol, pool) {
			return nil
		}
	}
	return nil
}

// --- Exact 1-D machinery -------------------------------------------------

// lambdaEvent marks a breakpoint of the piecewise-linear H(λ).
type lambdaEvent struct {
	lam   float64
	i     int32
	upper bool // true for the (y_i+1)/w_i breakpoint (mid → −1)
}

// solveLambda finds λ such that H(λ) = Σ_i w_i·clamp(y_i − λ·w_i) = c.
// H is continuous, piecewise linear and non-increasing from +Σw to −Σw
// (§2.3 of the paper). Returns false when c is outside the achievable range.
// Runs in O(n log n): sort the 2n breakpoints, then sweep.
func solveLambda(y, w []float64, c float64) (float64, bool) {
	totalW := 0.0
	events := make([]lambdaEvent, 0, 2*len(y))
	for i := range y {
		wi := w[i]
		if wi <= 0 {
			continue
		}
		totalW += wi
		events = append(events,
			lambdaEvent{lam: (y[i] - 1) / wi, i: int32(i), upper: false},
			lambdaEvent{lam: (y[i] + 1) / wi, i: int32(i), upper: true},
		)
	}
	scale := math.Max(1, totalW)
	eps := 1e-12 * scale
	if c > totalW+eps || c < -totalW-eps {
		return 0, false
	}
	if len(events) == 0 {
		// No positive weights: H ≡ 0; solvable only if c ≈ 0.
		if math.Abs(c) <= eps {
			return 0, true
		}
		return 0, false
	}
	sort.Slice(events, func(a, b int) bool { return events[a].lam < events[b].lam })

	// Segment coefficients: H(λ) = constSum + linC − slope·λ.
	constSum := totalW // λ → −∞: every x_i = +1
	linC := 0.0
	slope := 0.0
	prevLam := math.Inf(-1)
	for _, e := range events {
		// Current segment is [prevLam, e.lam].
		if slope > 0 {
			hEnd := constSum + linC - slope*e.lam
			if hEnd <= c {
				lam := (constSum + linC - c) / slope
				if lam < prevLam {
					lam = prevLam
				}
				if lam > e.lam {
					lam = e.lam
				}
				return lam, true
			}
		} else {
			// Constant segment.
			if math.Abs(constSum+linC-c) <= eps {
				if math.IsInf(prevLam, -1) {
					return e.lam - 1, true
				}
				return prevLam, true
			}
		}
		// Cross the breakpoint: update coefficients.
		wi := w[e.i]
		if !e.upper {
			// x_i switches +1 → middle.
			constSum -= wi
			linC += wi * y[e.i]
			slope += wi * wi
		} else {
			// x_i switches middle → −1.
			linC -= wi * y[e.i]
			slope -= wi * wi
			constSum -= wi
		}
		prevLam = e.lam
	}
	// Tail: H ≡ −totalW.
	if math.Abs(-totalW-c) <= eps {
		return prevLam, true
	}
	return 0, false
}

// applyLambda1 writes x_i = clamp(y_i − λ·w_i) into dst.
func applyLambda1(dst, y, w []float64, lam float64) {
	for i := range y {
		v := y[i] - lam*w[i]
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		dst[i] = v
	}
}

// exact1D computes the exact projection for a single slab constraint:
// clamp, and if the slab is violated solve the equality on the violated
// face. KKT sign conditions hold automatically because H is non-increasing.
// The coordinate-wise clamp/apply passes and the slab-value reduction run
// over the pool; the O(n log n) breakpoint sweep of solveLambda stays
// serial (it is dominated by the sort and feeds a single scalar λ).
func exact1D(dst, y []float64, con Constraint, st *State, pool *vecmath.Pool) error {
	pool.For(len(y), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = vecmath.ClampVal(y[i])
		}
	})
	v := valueP(con, dst, pool)
	var target float64
	switch {
	case v > con.Hi:
		target = con.Hi
	case v < con.Lo:
		target = con.Lo
	default:
		return nil
	}
	lam, ok := solveLambda(y, con.W, target)
	if !ok {
		return ErrInfeasible
	}
	w := con.W
	pool.For(len(y), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = vecmath.ClampVal(y[i] - lam*w[i])
		}
	})
	if st != nil {
		st.Lambda = append(st.Lambda[:0], lam)
	}
	return nil
}

// exact dispatches the exact projection by dimension count.
func exact(dst, y []float64, cons []Constraint, opt Options, st *State) error {
	switch len(cons) {
	case 0:
		copy(dst, y)
		BoxClamp(dst)
		return nil
	case 1:
		return exact1D(dst, y, cons[0], st, opt.pool())
	case 2:
		return exact2D(dst, y, cons[0], cons[1], st)
	default:
		// For d > 2 the exact projection is obtained with Dykstra at tight
		// tolerance; the paper observes Dykstra and the exact projection
		// coincide (§3.1). The Nested method offers the Appendix A.1 scheme.
		return dykstra(dst, y, cons, 50*opt.maxIter(), opt.tol()*1e-3, opt.pool())
	}
}
