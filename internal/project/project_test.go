package project

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randInstance generates a random point and d random positive-weight slab
// constraints centered at c with half-width eps·Σw.
func randInstance(rng *rand.Rand, n, d int, eps float64) ([]float64, []Constraint) {
	y := make([]float64, n)
	for i := range y {
		y[i] = rng.NormFloat64() * 2
	}
	cons := make([]Constraint, d)
	for j := range cons {
		w := make([]float64, n)
		total := 0.0
		for i := range w {
			w[i] = rng.Float64()*3 + 0.05
			total += w[i]
		}
		cons[j] = Constraint{W: w, Lo: -eps * total, Hi: eps * total}
	}
	return y, cons
}

func projectWith(t *testing.T, m Method, y []float64, cons []Constraint) []float64 {
	t.Helper()
	dst := make([]float64, len(y))
	err := Project(dst, y, cons, Options{Method: m, MaxIter: 3000, Tol: 1e-12}, nil)
	if err != nil {
		t.Fatalf("%v: %v", m, err)
	}
	return dst
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestBoxOnlyNoConstraints(t *testing.T) {
	y := []float64{-3, -0.5, 0, 0.5, 3}
	want := []float64{-1, -0.5, 0, 0.5, 1}
	for _, m := range []Method{Exact, Nested, Alternating, DykstraMethod, AlternatingOneShot} {
		got := projectWith(t, m, y, nil)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("%v: got %v, want %v", m, got, want)
			}
		}
	}
}

func TestSolveLambdaHandComputed(t *testing.T) {
	// y = (2, 2, 0), w = 1: H(1) = clamp(1)+clamp(1)+clamp(-1) = 1.
	y := []float64{2, 2, 0}
	w := []float64{1, 1, 1}
	lam, ok := solveLambda(y, w, 1)
	if !ok || math.Abs(lam-1) > 1e-9 {
		t.Fatalf("lam=%g ok=%v, want 1", lam, ok)
	}
	// Extremes of the achievable range.
	if _, ok := solveLambda(y, w, 3.5); ok {
		t.Fatal("c beyond +Σw should be infeasible")
	}
	if _, ok := solveLambda(y, w, -3.5); ok {
		t.Fatal("c beyond −Σw should be infeasible")
	}
	if lam, ok := solveLambda(y, w, 3); !ok {
		t.Fatalf("c=+Σw should be feasible, got ok=%v lam=%g", ok, lam)
	}
}

// Property: solveLambda's λ reproduces the target exactly.
func TestQuickSolveLambdaTarget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		y := make([]float64, n)
		w := make([]float64, n)
		total := 0.0
		for i := range y {
			y[i] = rng.NormFloat64() * 3
			w[i] = rng.Float64()*2 + 0.01
			total += w[i]
		}
		c := (rng.Float64()*2 - 1) * total * 0.95
		lam, ok := solveLambda(y, w, c)
		if !ok {
			return false
		}
		got := 0.0
		for i := range y {
			v := y[i] - lam*w[i]
			if v > 1 {
				v = 1
			} else if v < -1 {
				v = -1
			}
			got += w[i] * v
		}
		return math.Abs(got-c) < 1e-7*math.Max(1, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLambdaZeroWeights(t *testing.T) {
	y := []float64{5, -5}
	w := []float64{0, 0}
	if _, ok := solveLambda(y, w, 0); !ok {
		t.Fatal("zero weights with c=0 should be feasible")
	}
	if _, ok := solveLambda(y, w, 1); ok {
		t.Fatal("zero weights with c=1 should be infeasible")
	}
}

func TestExact1DMatchesDykstra(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		y, cons := randInstance(rng, 25, 1, 0.05)
		ex := projectWith(t, Exact, y, cons)
		dy := projectWith(t, DykstraMethod, y, cons)
		if !Feasible(ex, cons, 1e-6) {
			t.Fatalf("trial %d: exact infeasible", trial)
		}
		if d := dist(ex, dy); d > 1e-4 {
			t.Fatalf("trial %d: exact vs dykstra distance %g", trial, d)
		}
		// Projection optimality: never farther from y than Dykstra's point.
		if dist(y, ex) > dist(y, dy)+1e-6 {
			t.Fatalf("trial %d: exact distance %g > dykstra %g", trial, dist(y, ex), dist(y, dy))
		}
	}
}

func TestExact2DMatchesDykstra(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		y, cons := randInstance(rng, 20, 2, 0.04)
		ex := projectWith(t, Exact, y, cons)
		dy := projectWith(t, DykstraMethod, y, cons)
		if !Feasible(ex, cons, 1e-6) {
			t.Fatalf("trial %d: exact infeasible", trial)
		}
		if d := dist(ex, dy); d > 1e-3 {
			t.Fatalf("trial %d: exact vs dykstra distance %g", trial, d)
		}
		if dist(y, ex) > dist(y, dy)+1e-5 {
			t.Fatalf("trial %d: exact not optimal: %g > %g", trial, dist(y, ex), dist(y, dy))
		}
	}
}

func TestNestedMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, d := range []int{1, 2, 3} {
		for trial := 0; trial < 8; trial++ {
			y, cons := randInstance(rng, 15, d, 0.06)
			ne := projectWith(t, Nested, y, cons)
			ex := projectWith(t, Exact, y, cons)
			if !Feasible(ne, cons, 1e-5) {
				t.Fatalf("d=%d trial %d: nested infeasible", d, trial)
			}
			if dd := dist(ne, ex); dd > 1e-3 {
				t.Fatalf("d=%d trial %d: nested vs exact distance %g", d, trial, dd)
			}
		}
	}
}

func TestAsymmetricSlabs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		y, cons := randInstance(rng, 18, 2, 0.05)
		// Shift both slabs off-center, as vertex fixing does.
		for j := range cons {
			total := cons[j].TotalWeight()
			shift := (rng.Float64()*0.4 - 0.2) * total
			cons[j].Lo += shift
			cons[j].Hi += shift
		}
		ex := projectWith(t, Exact, y, cons)
		dy := projectWith(t, DykstraMethod, y, cons)
		if !Feasible(ex, cons, 1e-6) {
			t.Fatalf("trial %d: infeasible", trial)
		}
		if dist(y, ex) > dist(y, dy)+1e-5 {
			t.Fatalf("trial %d: suboptimal: %g > %g", trial, dist(y, ex), dist(y, dy))
		}
	}
}

func TestExact2DZeroWeightCoords(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		n := 16
		y, cons := randInstance(rng, n, 2, 0.05)
		// Zero out the second-dimension weight of a third of the coords
		// (vertical boundary lines) and both weights for a couple.
		for i := 0; i < n/3; i++ {
			cons[1].W[i] = 0
		}
		cons[0].W[n-1] = 0
		cons[1].W[n-1] = 0
		ex := projectWith(t, Exact, y, cons)
		dy := projectWith(t, DykstraMethod, y, cons)
		if !Feasible(ex, cons, 1e-6) {
			t.Fatalf("trial %d: infeasible", trial)
		}
		if dist(y, ex) > dist(y, dy)+1e-4 {
			t.Fatalf("trial %d: suboptimal %g > %g", trial, dist(y, ex), dist(y, dy))
		}
	}
}

// Property: the exact projection is idempotent: P(P(y)) = P(y).
func TestQuickExactIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(2) + 1
		y, cons := randInstance(rng, 12, d, 0.08)
		p1 := make([]float64, len(y))
		if Project(p1, y, cons, Options{Method: Exact}, nil) != nil {
			return false
		}
		p2 := make([]float64, len(y))
		if Project(p2, p1, cons, Options{Method: Exact}, nil) != nil {
			return false
		}
		return dist(p1, p2) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: projection onto a convex set is non-expansive:
// ‖P(a) − P(b)‖ ≤ ‖a − b‖ (+ numerical slack).
func TestQuickExactNonExpansive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(2) + 1
		a, cons := randInstance(rng, 10, d, 0.1)
		b := make([]float64, len(a))
		for i := range b {
			b[i] = a[i] + rng.NormFloat64()
		}
		pa := make([]float64, len(a))
		pb := make([]float64, len(a))
		if Project(pa, a, cons, Options{Method: Exact}, nil) != nil {
			return false
		}
		if Project(pb, b, cons, Options{Method: Exact}, nil) != nil {
			return false
		}
		return dist(pa, pb) <= dist(a, b)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: every convergent method lands in K.
func TestQuickFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := rng.Intn(3) + 1
		y, cons := randInstance(rng, 14, d, 0.07)
		for _, m := range []Method{Exact, DykstraMethod, Alternating} {
			dst := make([]float64, len(y))
			if Project(dst, y, cons, Options{Method: m, MaxIter: 2000, Tol: 1e-10}, nil) != nil {
				return false
			}
			if !Feasible(dst, cons, 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestOneShotReducesViolation(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	y, cons := randInstance(rng, 50, 2, 0.02)
	dst := make([]float64, len(y))
	if err := Project(dst, y, cons, Options{Method: AlternatingOneShot, Center: true}, nil); err != nil {
		t.Fatal(err)
	}
	for j, c := range cons {
		before := math.Abs(c.Value(y) - c.Center())
		after := math.Abs(c.Value(dst) - c.Center())
		if after > before+1e-9 {
			t.Fatalf("dim %d: one-shot increased violation %g -> %g", j, before, after)
		}
	}
	for _, v := range dst {
		if v > 1 || v < -1 {
			t.Fatal("one-shot left the cube")
		}
	}
}

func TestWarmStartConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	y, cons := randInstance(rng, 30, 2, 0.03)
	cold := make([]float64, len(y))
	if err := Project(cold, y, cons, Options{Method: Exact}, nil); err != nil {
		t.Fatal(err)
	}
	st := &State{}
	warm1 := make([]float64, len(y))
	if err := Project(warm1, y, cons, Options{Method: Exact}, st); err != nil {
		t.Fatal(err)
	}
	// Re-project a slightly moved point with the warm state.
	y2 := make([]float64, len(y))
	for i := range y2 {
		y2[i] = y[i] + 0.01*rng.NormFloat64()
	}
	warm2 := make([]float64, len(y))
	if err := Project(warm2, y2, cons, Options{Method: Exact}, st); err != nil {
		t.Fatal(err)
	}
	coldRef := make([]float64, len(y))
	if err := Project(coldRef, y2, cons, Options{Method: Exact}, nil); err != nil {
		t.Fatal(err)
	}
	if d := dist(cold, warm1); d > 1e-9 {
		t.Fatalf("warm-start changed the result: %g", d)
	}
	if d := dist(warm2, coldRef); d > 1e-6 {
		t.Fatalf("warm-start second projection differs: %g", d)
	}
}

func TestProjectValidation(t *testing.T) {
	y := []float64{0, 0}
	if err := Project(make([]float64, 1), y, nil, Options{}, nil); err == nil {
		t.Fatal("length mismatch should error")
	}
	bad := []Constraint{{W: []float64{1, -1}, Lo: 0, Hi: 1}}
	if err := Project(make([]float64, 2), y, bad, Options{}, nil); err == nil {
		t.Fatal("negative weight should error")
	}
	rev := []Constraint{{W: []float64{1, 1}, Lo: 1, Hi: 0}}
	if err := Project(make([]float64, 2), y, rev, Options{}, nil); err == nil {
		t.Fatal("Lo > Hi should error")
	}
	short := []Constraint{{W: []float64{1}, Lo: 0, Hi: 1}}
	if err := Project(make([]float64, 2), y, short, Options{}, nil); err == nil {
		t.Fatal("weight length mismatch should error")
	}
}

func TestInfeasibleTarget(t *testing.T) {
	// Slab requires Σx = 10 but max achievable with w=1,n=2 is 2.
	y := []float64{0, 0}
	cons := []Constraint{{W: []float64{1, 1}, Lo: 10, Hi: 11}}
	dst := make([]float64, 2)
	if err := Project(dst, y, cons, Options{Method: Exact}, nil); err == nil {
		t.Fatal("expected ErrInfeasible")
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{AlternatingOneShot, Alternating, DykstraMethod, Exact, Nested} {
		got, err := ParseMethod(m.String())
		if err != nil || got != m {
			t.Fatalf("round trip %v: got %v err %v", m, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Fatal("bogus method should error")
	}
	if Method(99).String() == "" {
		t.Fatal("unknown method should still format")
	}
}

func TestConstraintHelpers(t *testing.T) {
	c := Constraint{W: []float64{1, 2}, Lo: -1, Hi: 3}
	if c.Center() != 1 {
		t.Fatalf("center=%g", c.Center())
	}
	if c.Value([]float64{1, 1}) != 3 {
		t.Fatalf("value=%g", c.Value([]float64{1, 1}))
	}
	if !c.Satisfied([]float64{1, 1}, 0) {
		t.Fatal("hi boundary should satisfy")
	}
	if c.Satisfied([]float64{1, 1.1}, 0) {
		t.Fatal("3.2 > hi should not satisfy")
	}
	if c.WeightNormSq() != 5 {
		t.Fatalf("normsq=%g", c.WeightNormSq())
	}
	if c.TotalWeight() != 3 {
		t.Fatalf("total=%g", c.TotalWeight())
	}
}

func TestHyperplaneProjectExactness(t *testing.T) {
	x := []float64{1, 1, 1}
	w := []float64{1, 2, 3}
	hyperplaneProject(x, w, 0)
	v := 0.0
	for i := range x {
		v += w[i] * x[i]
	}
	if math.Abs(v) > 1e-12 {
		t.Fatalf("hyperplane projection missed: %g", v)
	}
	// Zero weights: no-op.
	x2 := []float64{1, 2}
	hyperplaneProject(x2, []float64{0, 0}, 5)
	if x2[0] != 1 || x2[1] != 2 {
		t.Fatal("zero-weight hyperplane changed x")
	}
}

// Property: the exact 2-D projection together with its dual multipliers
// forms a valid KKT certificate (§2.2): x = clamp(y − λ1·w1 − λ2·w2),
// positive λ_j ⇒ upper face tight, negative ⇒ lower face tight, zero ⇒
// inside the slab. This verifies optimality directly, independent of any
// reference algorithm.
func TestQuickExact2DKKTCertificate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		y, cons := randInstance(rng, 20, 2, 0.05)
		dst := make([]float64, len(y))
		st := &State{}
		if err := Project(dst, y, cons, Options{Method: Exact}, st); err != nil {
			return false
		}
		if len(st.Lambda) != 2 {
			t.Logf("seed %d: no multipliers recorded", seed)
			return false
		}
		l1, l2 := st.Lambda[0], st.Lambda[1]
		scale := math.Max(cons[0].TotalWeight(), cons[1].TotalWeight())
		// Stationarity: x_i = clamp(y_i − λ1·w1_i − λ2·w2_i).
		for i := range y {
			want := y[i] - l1*cons[0].W[i] - l2*cons[1].W[i]
			if want > 1 {
				want = 1
			} else if want < -1 {
				want = -1
			}
			if math.Abs(dst[i]-want) > 1e-6 {
				t.Logf("seed %d: stationarity violated at %d: %g vs %g", seed, i, dst[i], want)
				return false
			}
		}
		// Complementary slackness per dimension.
		for j, lam := range []float64{l1, l2} {
			v := cons[j].Value(dst)
			tol := 1e-6 * math.Max(1, scale)
			switch {
			case lam > 1e-7:
				if math.Abs(v-cons[j].Hi) > tol {
					t.Logf("seed %d: dim %d λ=%g>0 but value %g != Hi %g", seed, j, lam, v, cons[j].Hi)
					return false
				}
			case lam < -1e-7:
				if math.Abs(v-cons[j].Lo) > tol {
					t.Logf("seed %d: dim %d λ=%g<0 but value %g != Lo %g", seed, j, lam, v, cons[j].Lo)
					return false
				}
			default:
				if v < cons[j].Lo-tol || v > cons[j].Hi+tol {
					t.Logf("seed %d: dim %d λ≈0 but value %g outside slab", seed, j, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Exercise the d>2 exact fallback (Dykstra-based) for feasibility and
// near-optimality against plain Dykstra.
func TestExactD3Fallback(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	y, cons := randInstance(rng, 12, 3, 0.06)
	ex := projectWith(t, Exact, y, cons)
	if !Feasible(ex, cons, 1e-5) {
		t.Fatal("d=3 exact fallback infeasible")
	}
	dy := projectWith(t, DykstraMethod, y, cons)
	if dist(y, ex) > dist(y, dy)+1e-4 {
		t.Fatalf("d=3 exact fallback worse than dykstra: %g > %g", dist(y, ex), dist(y, dy))
	}
}
