package obs

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency bucket upper bounds in seconds,
// exponential from 1ms to 60s — wide enough to cover ingest of a 573k-edge
// graph and a cold multilevel solve on the same scale.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a fixed-bucket latency histogram with lock-free observation:
// per-bucket atomic counters plus an atomic nanosecond sum. Buckets are set
// at construction and never change, matching Prometheus' fixed-bucket model.
type Histogram struct {
	bounds []float64      // ascending upper bounds in seconds; implicit +Inf after
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sumNS  atomic.Int64
	total  atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds (in
// seconds). Pass nil for DefBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNS.Add(int64(d))
	h.total.Add(1)
}

// HistSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the +Inf bucket last.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64 // len(Bounds)+1
	SumSec float64
	Count  int64
}

// Snapshot copies the current counters. Individual loads are atomic; the
// snapshot as a whole is only as consistent as concurrent Observe calls
// allow, which is the standard Prometheus client behavior.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		SumSec: float64(h.sumNS.Load()) / 1e9,
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// WritePromHistogram renders one snapshot in Prometheus text exposition
// format: cumulative `_bucket{...,le=...}` series, `_sum` and `_count`.
// labels is a pre-rendered, sorted label list without braces (e.g.
// `engine="gd"`), or "" for an unlabeled histogram; the `le` label is
// appended last, which keeps the label set sorted for every label name that
// precedes "le" alphabetically (the daemon only uses "engine").
func WritePromHistogram(b *strings.Builder, name, labels string, s HistSnapshot) {
	cum := int64(0)
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		writeBucket(b, name, labels, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	writeBucket(b, name, labels, "+Inf", cum)
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_sum%s %g\n", name, brace, s.SumSec)
	fmt.Fprintf(b, "%s_count%s %d\n", name, brace, s.Count)
}

func writeBucket(b *strings.Builder, name, labels, le string, cum int64) {
	if labels != "" {
		fmt.Fprintf(b, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
	} else {
		fmt.Fprintf(b, "%s_bucket{le=%q} %d\n", name, le, cum)
	}
}
