// Package obs is the zero-dependency observability layer shared by the
// library engines, the CLIs and the serving daemon: request-scoped span
// trees, fixed-bucket latency histograms and a Prometheus text-exposition
// linter, in the same homegrown style as the daemon's metrics.
//
// A span tree records where a solve spends its time — ingest, cache lookup,
// queue wait, engine solve, and inside the engine the per-level coarsening,
// per-bisection GD and rounding. Trees are built under one trace-wide mutex
// and exported as immutable snapshots, so concurrent readers (the daemon's
// /v1/jobs/{id}/trace endpoint polling a running job) are safe.
//
// Determinism contract: span STRUCTURE — names, nesting, child order,
// counts, and every attribute — must be byte-identical for a fixed seed at
// any worker count; only start offsets and durations may vary. The engines
// uphold this by always creating sibling spans from the parent's own
// goroutine in deterministic code order before forking work, never from
// inside concurrent branches; attributes carry only seed-deterministic
// values (sizes, paths, iteration counts, localities — results are
// bit-identical at any parallelism, so these are too). Structure() renders
// exactly the deterministic part, which is what the determinism tests
// compare.
//
// All Span methods are safe on a nil receiver and do nothing, so untraced
// solves pay a single nil check per would-be span.
package obs

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// trace is the shared state of one span tree: the epoch every span offset is
// relative to, and the mutex serializing all mutation and snapshotting.
type trace struct {
	mu    chan struct{} // 1-buffered channel as mutex; avoids sync import cycle concerns and keeps Span copyable-by-pointer only
	epoch time.Time
}

func (t *trace) lock()   { t.mu <- struct{}{} }
func (t *trace) unlock() { <-t.mu }

// Span is one timed region of a trace. Create the root with NewTrace, childs
// with Start, finish with End, annotate with SetAttr. A nil *Span is a valid
// no-op sink: every method returns immediately (Start returns nil), so call
// sites never need to guard.
type Span struct {
	tr       *trace
	name     string
	start    time.Duration // offset from trace epoch
	dur      time.Duration // zero until End
	ended    bool
	attrs    map[string]any
	children []*Span
}

// NewTrace starts a new span tree rooted at a span with the given name.
func NewTrace(name string) *Span {
	tr := &trace{mu: make(chan struct{}, 1), epoch: time.Now()}
	return &Span{tr: tr, name: name}
}

// Start creates and returns a child span, started now. Call from the
// goroutine that owns s (or before forking work to children): sibling order
// is creation order, and the determinism contract requires creation order to
// be schedule-independent.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{tr: s.tr, name: name, start: time.Since(s.tr.epoch)}
	s.tr.lock()
	s.children = append(s.children, c)
	s.tr.unlock()
	return c
}

// End marks the span finished, recording its duration. Idempotent: the first
// End wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.tr.epoch) - s.start
	}
	s.tr.unlock()
}

// SetAttr attaches (or overwrites) one attribute. Values must be
// seed-deterministic (sizes, paths, iteration counts, localities) — never
// durations or timestamps, which belong in the span timing itself.
func (s *Span) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	s.tr.lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
	s.tr.unlock()
}

// Snapshot deep-copies the tree rooted at s into an immutable view, safe to
// render while the solve is still mutating the live spans.
func (s *Span) Snapshot() *SpanView {
	if s == nil {
		return nil
	}
	s.tr.lock()
	defer s.tr.unlock()
	return s.view()
}

// view copies one span (callers hold the trace lock).
func (s *Span) view() *SpanView {
	v := &SpanView{
		Name:    s.name,
		StartUS: s.start.Microseconds(),
		DurUS:   s.dur.Microseconds(),
		Ended:   s.ended,
	}
	if len(s.attrs) > 0 {
		v.Attrs = make(map[string]any, len(s.attrs))
		for k, av := range s.attrs {
			v.Attrs[k] = av
		}
	}
	for _, c := range s.children {
		v.Children = append(v.Children, c.view())
	}
	return v
}

// SpanView is the immutable, JSON-ready snapshot of a span. Attrs marshal
// with sorted keys (encoding/json sorts map keys), so two structurally
// identical traces marshal identically except for the timing fields.
type SpanView struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	// Ended reports whether End had run when the snapshot was taken; a span
	// still false after its request finished is a span-accounting leak.
	Ended    bool           `json:"ended"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanView    `json:"children,omitempty"`
}

// Structure renders the deterministic part of the tree — names, sorted
// attributes, nesting and child order — with every timing field excluded.
// Two runs of the same request at different worker counts must produce
// byte-identical Structure strings; the determinism tests compare exactly
// this.
func (v *SpanView) Structure() string {
	var b strings.Builder
	v.structure(&b)
	return b.String()
}

func (v *SpanView) structure(b *strings.Builder) {
	if v == nil {
		return
	}
	b.WriteString(v.Name)
	if len(v.Attrs) > 0 {
		keys := make([]string, 0, len(v.Attrs))
		for k := range v.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteByte('=')
			b.WriteString(formatAttr(v.Attrs[k]))
		}
		b.WriteByte('}')
	}
	if len(v.Children) > 0 {
		b.WriteByte('[')
		for i, c := range v.Children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.structure(b)
		}
		b.WriteByte(']')
	}
}

// formatAttr renders an attribute value deterministically: floats get the
// shortest exact representation, everything else %v.
func formatAttr(v any) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	default:
		return fmt.Sprintf("%v", x)
	}
}

// Walk visits every span of the view in depth-first pre-order.
func (v *SpanView) Walk(fn func(*SpanView)) {
	if v == nil {
		return
	}
	fn(v)
	for _, c := range v.Children {
		c.Walk(fn)
	}
}

// CountSpans returns the number of spans in the tree.
func (v *SpanView) CountSpans() int {
	n := 0
	v.Walk(func(*SpanView) { n++ })
	return n
}

// Float reads a numeric attribute, tolerating the int/int64/float64 variety
// attr writers (and JSON round trips) produce.
func (v *SpanView) Float(key string) (float64, bool) {
	if v == nil || v.Attrs == nil {
		return 0, false
	}
	switch x := v.Attrs[key].(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case int32:
		return float64(x), true
	}
	return 0, false
}

type ctxKey struct{}

// NewContext returns ctx carrying the span; handlers thread the request's
// trace through their call chain with it.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil (a valid no-op span)
// when the request is untraced.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
