package obs

import (
	"strings"
	"testing"
)

func lintOne(t *testing.T, text string) []error {
	t.Helper()
	return LintExposition(text)
}

func TestLintCleanPage(t *testing.T) {
	page := strings.Join([]string{
		"# HELP up daemon liveness",
		"# TYPE up gauge",
		"up 1",
		"# HELP reqs_total requests served",
		"# TYPE reqs_total counter",
		`reqs_total{code="200",engine="gd"} 7`,
		`reqs_total{code="200",engine="metis"} 3`,
		"# HELP lat_seconds request latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 0.42",
		"lat_seconds_count 3",
		"",
	}, "\n")
	if errs := lintOne(t, page); len(errs) > 0 {
		t.Fatalf("clean page produced errors: %v", errs)
	}
}

func TestLintMissingHelpAndType(t *testing.T) {
	errs := lintOne(t, "orphan_total 1\n")
	if len(errs) != 2 {
		t.Fatalf("want 2 errors (no HELP, no TYPE), got %v", errs)
	}
}

func TestLintHelpAfterSample(t *testing.T) {
	page := "late_total 1\n# HELP late_total too late\n# TYPE late_total counter\n"
	if errs := lintOne(t, page); len(errs) == 0 {
		t.Fatal("HELP/TYPE after sample not flagged")
	}
}

func TestLintUnsortedLabels(t *testing.T) {
	page := "# HELP m_total m\n# TYPE m_total counter\n" +
		`m_total{engine="gd",code="200"} 1` + "\n"
	errs := lintOne(t, page)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "not sorted") {
		t.Fatalf("unsorted labels not flagged: %v", errs)
	}
}

func TestLintBadValue(t *testing.T) {
	page := "# HELP m m\n# TYPE m gauge\nm nope\n"
	errs := lintOne(t, page)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "not a float") {
		t.Fatalf("bad value not flagged: %v", errs)
	}
}

func TestLintBadMetricName(t *testing.T) {
	page := "# HELP m m\n# TYPE m gauge\n1bad_name 2\n"
	if errs := lintOne(t, page); len(errs) == 0 {
		t.Fatal("invalid metric name not flagged")
	}
}

func TestLintBadTypeValue(t *testing.T) {
	page := "# HELP m m\n# TYPE m enum\nm 1\n"
	if errs := lintOne(t, page); len(errs) == 0 {
		t.Fatal("invalid TYPE value not flagged")
	}
}

func TestLintDuplicateSeries(t *testing.T) {
	page := "# HELP m m\n# TYPE m gauge\nm 1\nm 2\n"
	errs := lintOne(t, page)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "duplicate") {
		t.Fatalf("duplicate series not flagged: %v", errs)
	}
}

func TestLintUnquotedLabelValue(t *testing.T) {
	page := "# HELP m m\n# TYPE m gauge\nm{engine=gd} 1\n"
	if errs := lintOne(t, page); len(errs) == 0 {
		t.Fatal("unquoted label value not flagged")
	}
}

func TestLintNonCumulativeHistogram(t *testing.T) {
	page := strings.Join([]string{
		"# HELP h h",
		"# TYPE h histogram",
		`h_bucket{le="0.1"} 5`,
		`h_bucket{le="+Inf"} 3`,
		"h_sum 1",
		"h_count 3",
		"",
	}, "\n")
	errs := lintOne(t, page)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "cumulative") {
		t.Fatalf("non-cumulative buckets not flagged: %v", errs)
	}
}

func TestLintHistogramSuffixesUseBaseMeta(t *testing.T) {
	// _bucket/_sum/_count of a declared histogram must not be reported as
	// missing their own HELP/TYPE.
	page := strings.Join([]string{
		"# HELP h h",
		"# TYPE h histogram",
		`h_bucket{engine="gd",le="+Inf"} 1`,
		`h_sum{engine="gd"} 0.5`,
		`h_count{engine="gd"} 1`,
		"",
	}, "\n")
	if errs := lintOne(t, page); len(errs) > 0 {
		t.Fatalf("histogram family flagged spuriously: %v", errs)
	}
}

func TestLintEscapedLabelValue(t *testing.T) {
	page := "# HELP m m\n# TYPE m gauge\n" +
		`m{path="a\"b,c"} 1` + "\n"
	if errs := lintOne(t, page); len(errs) > 0 {
		t.Fatalf("escaped label value flagged: %v", errs)
	}
}
