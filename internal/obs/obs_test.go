package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanIsNoOp(t *testing.T) {
	var s *Span
	c := s.Start("child")
	if c != nil {
		t.Fatalf("nil.Start returned %v, want nil", c)
	}
	s.SetAttr("k", 1)
	s.End()
	if v := s.Snapshot(); v != nil {
		t.Fatalf("nil.Snapshot returned %v, want nil", v)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	root := NewTrace("request")
	root.SetAttr("engine", "gd")
	a := root.Start("ingest")
	a.SetAttr("edges", 42)
	a.End()
	b := root.Start("solve")
	b1 := b.Start("gd")
	b1.SetAttr("final_locality", 0.75)
	b1.End()
	b.End()
	root.End()

	v := root.Snapshot()
	if got := v.CountSpans(); got != 4 {
		t.Fatalf("CountSpans = %d, want 4", got)
	}
	want := "request{engine=gd}[ingest{edges=42} solve[gd{final_locality=0.75}]]"
	if got := v.Structure(); got != want {
		t.Fatalf("Structure = %q, want %q", got, want)
	}
}

func TestStructureExcludesTiming(t *testing.T) {
	mk := func(sleep time.Duration) string {
		root := NewTrace("r")
		c := root.Start("work")
		time.Sleep(sleep)
		c.End()
		root.End()
		return root.Snapshot().Structure()
	}
	if a, b := mk(0), mk(2*time.Millisecond); a != b {
		t.Fatalf("structure differs with timing: %q vs %q", a, b)
	}
}

func TestSnapshotWhileLive(t *testing.T) {
	root := NewTrace("r")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c := root.Start("c")
			c.SetAttr("i", i)
			c.End()
		}
	}()
	for i := 0; i < 100; i++ {
		v := root.Snapshot()
		if _, err := json.Marshal(v); err != nil {
			t.Fatalf("marshal live snapshot: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestEndIdempotent(t *testing.T) {
	root := NewTrace("r")
	root.End()
	first := root.Snapshot().DurUS
	time.Sleep(2 * time.Millisecond)
	root.End()
	if second := root.Snapshot().DurUS; second != first {
		t.Fatalf("second End changed duration: %d -> %d", first, second)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	s := NewTrace("r")
	ctx := NewContext(context.Background(), s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext = %v, want %v", got, s)
	}
}

func TestSpanViewJSONDeterministic(t *testing.T) {
	mk := func() []byte {
		root := NewTrace("r")
		root.SetAttr("b", 2)
		root.SetAttr("a", 1)
		root.SetAttr("c", 0.5)
		root.End()
		v := root.Snapshot()
		v.StartUS, v.DurUS = 0, 0 // mask the only nondeterministic fields
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := mk(), mk(); string(a) != string(b) {
		t.Fatalf("JSON differs across runs: %s vs %s", a, b)
	}
}

func TestWalkAndFloat(t *testing.T) {
	root := NewTrace("r")
	g := root.Start("gd")
	g.SetAttr("iters", 40)
	g.SetAttr("final_locality", 0.8125)
	g.End()
	root.End()
	v := root.Snapshot()
	var gd *SpanView
	v.Walk(func(s *SpanView) {
		if s.Name == "gd" {
			gd = s
		}
	})
	if gd == nil {
		t.Fatal("gd span not found")
	}
	if f, ok := gd.Float("iters"); !ok || f != 40 {
		t.Fatalf("Float(iters) = %v,%v", f, ok)
	}
	if f, ok := gd.Float("final_locality"); !ok || f != 0.8125 {
		t.Fatalf("Float(final_locality) = %v,%v", f, ok)
	}
	if _, ok := gd.Float("missing"); ok {
		t.Fatal("Float(missing) reported ok")
	}

	// After a JSON round trip numbers come back as float64; Float must
	// still read them.
	b, _ := json.Marshal(v)
	var back SpanView
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if f, ok := back.Children[0].Float("iters"); !ok || f != 40 {
		t.Fatalf("Float(iters) after round trip = %v,%v", f, ok)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)   // bucket 0
	h.Observe(50 * time.Millisecond)  // bucket 1
	h.Observe(500 * time.Millisecond) // bucket 2
	h.Observe(5 * time.Second)        // +Inf
	h.Observe(10 * time.Millisecond)  // exactly on bound -> le=0.01 bucket

	s := h.Snapshot()
	wantCounts := []int64{2, 1, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	if s.SumSec < 5.5 || s.SumSec > 5.6 {
		t.Fatalf("SumSec = %g, want ~5.565", s.SumSec)
	}
}

func TestWritePromHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)

	var b strings.Builder
	b.WriteString("# HELP d_seconds test histogram\n# TYPE d_seconds histogram\n")
	WritePromHistogram(&b, "d_seconds", `engine="gd"`, h.Snapshot())
	out := b.String()

	for _, want := range []string{
		"d_seconds_bucket{engine=\"gd\",le=\"0.01\"} 1\n",
		"d_seconds_bucket{engine=\"gd\",le=\"0.1\"} 2\n",
		"d_seconds_bucket{engine=\"gd\",le=\"+Inf\"} 3\n",
		"d_seconds_count{engine=\"gd\"} 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if errs := LintExposition(out); len(errs) > 0 {
		t.Fatalf("histogram exposition fails lint: %v", errs)
	}

	// Unlabeled variant must also pass lint.
	var ub strings.Builder
	ub.WriteString("# HELP u_seconds test\n# TYPE u_seconds histogram\n")
	WritePromHistogram(&ub, "u_seconds", "", h.Snapshot())
	if errs := LintExposition(ub.String()); len(errs) > 0 {
		t.Fatalf("unlabeled exposition fails lint: %v", errs)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 8000 {
		t.Fatalf("Count = %d, want 8000", s.Count)
	}
}
