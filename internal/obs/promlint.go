package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text-format exposition the way a
// strict scraper would, without importing one: metric and label names match
// the spec grammar, every sample's metric has # HELP and # TYPE lines that
// precede it, TYPE values are legal, labels are sorted and well-quoted,
// sample values parse as floats, no series appears twice, and histogram
// bucket counts are cumulative in `le` order. Returns one error per problem
// found (nil-length slice for a clean page).
func LintExposition(text string) []error {
	var errs []error
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	series := map[string]int{}
	// bucketCum tracks the last cumulative count per histogram series
	// (label set minus `le`) to check monotonicity.
	bucketCum := map[string]int64{}

	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			name, kind, err := parseComment(line)
			if err != nil {
				errs = append(errs, fmt.Errorf("line %d: %v", ln, err))
				continue
			}
			switch kind {
			case "HELP":
				helpSeen[name] = true
			case "TYPE":
				typeSeen[name] = typeValue(line)
				switch typeSeen[name] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					errs = append(errs, fmt.Errorf("line %d: invalid TYPE %q for %s", ln, typeSeen[name], name))
				}
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			errs = append(errs, fmt.Errorf("line %d: %v", ln, err))
			continue
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			errs = append(errs, fmt.Errorf("line %d: value %q is not a float", ln, value))
		}
		base := baseName(name, typeSeen)
		if !helpSeen[base] {
			errs = append(errs, fmt.Errorf("line %d: sample %s has no preceding # HELP %s", ln, name, base))
		}
		if _, ok := typeSeen[base]; !ok {
			errs = append(errs, fmt.Errorf("line %d: sample %s has no preceding # TYPE %s", ln, name, base))
		}
		if !sort.SliceIsSorted(labels, func(a, b int) bool { return labels[a].name < labels[b].name }) {
			errs = append(errs, fmt.Errorf("line %d: labels of %s are not sorted", ln, name))
		}
		key := seriesKey(name, labels)
		if prev, dup := series[key]; dup {
			errs = append(errs, fmt.Errorf("line %d: duplicate series %s (first at line %d)", ln, key, prev))
		}
		series[key] = ln
		if typeSeen[base] == "histogram" && strings.HasSuffix(name, "_bucket") {
			cumKey := seriesKey(name, dropLabel(labels, "le"))
			cum, err := strconv.ParseInt(value, 10, 64)
			if err != nil {
				errs = append(errs, fmt.Errorf("line %d: bucket count %q is not an integer", ln, value))
				continue
			}
			if cum < bucketCum[cumKey] {
				errs = append(errs, fmt.Errorf("line %d: histogram %s buckets are not cumulative", ln, name))
			}
			bucketCum[cumKey] = cum
		}
	}
	return errs
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRE  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type label struct{ name, value string }

// parseComment validates a `# HELP name text` / `# TYPE name type` line and
// returns the metric name and comment kind ("" for a plain comment).
func parseComment(line string) (name, kind string, err error) {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return "", "", nil // plain comment, allowed
	}
	if len(fields) < 3 {
		return "", "", fmt.Errorf("malformed %s line: %q", fields[1], line)
	}
	if !metricNameRE.MatchString(fields[2]) {
		return "", "", fmt.Errorf("invalid metric name %q in %s line", fields[2], fields[1])
	}
	if fields[1] == "TYPE" && len(fields) != 4 {
		return "", "", fmt.Errorf("malformed TYPE line: %q", line)
	}
	return fields[2], fields[1], nil
}

func typeValue(line string) string {
	fields := strings.Fields(line)
	if len(fields) >= 4 {
		return fields[3]
	}
	return ""
}

// parseSample splits `name{l1="v1",l2="v2"} value` (labels optional) into
// its parts, validating names and quoting.
func parseSample(line string) (name string, labels []label, value string, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels, err = parseLabels(rest[brace+1 : end])
		if err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample line %q has no value", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !metricNameRE.MatchString(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	// Value is the first field of the remainder; an optional timestamp may follow.
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("sample line %q has malformed value section", line)
	}
	return name, labels, fields[0], nil
}

func parseLabels(s string) ([]label, error) {
	var out []label
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label pair %q has no '='", s)
		}
		lname := s[:eq]
		if !labelNameRE.MatchString(lname) {
			return nil, fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s value is not quoted", lname)
		}
		// Scan the quoted value honoring backslash escapes.
		j := 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			return nil, fmt.Errorf("label %s value has no closing quote", lname)
		}
		out = append(out, label{lname, s[1:j]})
		s = s[j+1:]
		if s != "" {
			if s[0] != ',' {
				return nil, fmt.Errorf("labels not comma-separated near %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// baseName maps a sample name to the metric name its HELP/TYPE lines use:
// histogram and summary samples append _bucket/_sum/_count to the base.
func baseName(name string, typeSeen map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, ok := strings.CutSuffix(name, suf); ok {
			if t := typeSeen[b]; t == "histogram" || t == "summary" {
				return b
			}
		}
	}
	return name
}

func dropLabel(labels []label, name string) []label {
	out := make([]label, 0, len(labels))
	for _, l := range labels {
		if l.name != name {
			out = append(out, l)
		}
	}
	return out
}

func seriesKey(name string, labels []label) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.name, l.value)
	}
	b.WriteByte('}')
	return b.String()
}
