// Package ring implements the consistent-hash ring shared by the routing
// tier (cmd/mdbgp-router) and the daemon's peer cache warming
// (internal/server): both must agree, byte for byte, on which replica owns a
// graph content hash, or routed traffic and warmed keys drift apart.
//
// The ring is the classic virtual-node construction: every member name is
// hashed at vnode points onto a 64-bit circle, keys hash onto the same
// circle, and a key is owned by the first member point at or clockwise after
// it. Placement depends only on (member names, vnode count), never on
// insertion order or process state, so independently constructed rings in
// the router and in every replica agree by construction. With enough vnodes
// (the default 64) each member owns an approximately equal share of the key
// space, and removing a member only reassigns the keys it owned.
package ring

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVNodes is the virtual-node count used when callers pass 0: enough
// that a handful of replicas split the key space within a few percent.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over named members. Construct
// with New; all methods are safe for concurrent use.
type Ring struct {
	members []string
	points  []point // sorted ascending by hash
}

type point struct {
	hash   uint64
	member int // index into members
}

// New builds a ring over the given member names (order-insensitive:
// placement depends only on the name set) with the given virtual-node count
// per member (0 = DefaultVNodes). Duplicate names are collapsed. An empty
// member set yields a ring whose lookups return "".
func New(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	// Sort the member list so member indices — and therefore Seq tie-breaks —
	// are independent of the order the caller listed replicas in.
	sort.Strings(uniq)
	r := &Ring{members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	var buf [8]byte
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			h := sha256.New()
			h.Write([]byte(m))
			h.Write([]byte{'#'})
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
			sum := h.Sum(nil)
			r.points = append(r.points, point{hash: binary.BigEndian.Uint64(sum[:8]), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit collision between distinct members is astronomically
		// unlikely, but the tie-break keeps placement total-ordered anyway.
		return r.points[a].member < r.points[b].member
	})
	return r
}

// Members returns the deduplicated, sorted member names.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// hashKey places a key on the circle.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// firstAt returns the index into points of the owner point for key.
func (r *Ring) firstAt(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle has no end
	}
	return i
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.members[r.points[r.firstAt(key)].member]
}

// Seq returns every member in failover order for key: the owner first, then
// each further member in the order its first point appears clockwise from the
// key. The routing tier walks this sequence when a replica is down, so
// retries land deterministically and every member appears exactly once.
func (r *Ring) Seq(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.members))
	seen := make([]bool, len(r.members))
	start := r.firstAt(key)
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}
