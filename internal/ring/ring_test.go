package ring

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

func TestRingDeterministicAcrossConstructionOrder(t *testing.T) {
	a := New([]string{"http://a:8080", "http://b:8080", "http://c:8080"}, 0)
	b := New([]string{"http://c:8080", "http://a:8080", "http://b:8080", "http://a:8080"}, 0)
	for _, k := range keys(500) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %q differs across construction order: %q vs %q", k, a.Owner(k), b.Owner(k))
		}
		sa, sb := a.Seq(k), b.Seq(k)
		if fmt.Sprint(sa) != fmt.Sprint(sb) {
			t.Fatalf("seq of %q differs across construction order: %v vs %v", k, sa, sb)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"r0", "r1", "r2", "r3"}
	r := New(members, 0)
	counts := map[string]int{}
	const n = 20000
	for _, k := range keys(n) {
		counts[r.Owner(k)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / n
		// With 64 vnodes the shares should be within a loose band of 1/4.
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys, want a roughly even split: %v", m, share*100, counts)
		}
	}
}

func TestRingSeqCoversAllMembersOnce(t *testing.T) {
	members := []string{"r0", "r1", "r2", "r3", "r4"}
	r := New(members, 8)
	for _, k := range keys(100) {
		seq := r.Seq(k)
		if len(seq) != len(members) {
			t.Fatalf("seq(%q) has %d members, want %d: %v", k, len(seq), len(members), seq)
		}
		seen := map[string]bool{}
		for _, m := range seq {
			if seen[m] {
				t.Fatalf("seq(%q) repeats %q: %v", k, m, seq)
			}
			seen[m] = true
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("seq(%q) does not start with the owner: %v vs %q", k, seq, r.Owner(k))
		}
	}
}

// TestRingMembershipChangeMovesFewKeys is the property consistent hashing
// exists for: removing one of four members must reassign (roughly) only the
// keys that member owned, leaving the vast majority untouched.
func TestRingMembershipChangeMovesFewKeys(t *testing.T) {
	full := New([]string{"r0", "r1", "r2", "r3"}, 0)
	less := New([]string{"r0", "r1", "r2"}, 0)
	moved, kept := 0, 0
	for _, k := range keys(10000) {
		before, after := full.Owner(k), less.Owner(k)
		if before == "r3" {
			continue // had to move
		}
		if before == after {
			kept++
		} else {
			moved++
		}
	}
	if frac := float64(moved) / float64(moved+kept); frac > 0.05 {
		t.Fatalf("%.1f%% of surviving-member keys moved on membership change, want ~0%%", frac*100)
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	empty := New(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if got := empty.Seq("k"); got != nil {
		t.Fatalf("empty ring seq = %v, want nil", got)
	}
	single := New([]string{"only"}, 0)
	for _, k := range keys(10) {
		if single.Owner(k) != "only" {
			t.Fatalf("single-member ring routed %q elsewhere", k)
		}
	}
}
