package mdbgp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mdbgp/internal/gen"
)

// Golden-file regression tests: fixture graphs plus expected partition
// outputs at a pinned seed, committed under testdata/golden/. Any change to
// the partition an engine path produces — a quality regression, a
// determinism break, an accidental algorithmic change — fails loudly here.
//
// To regenerate after an INTENTIONAL algorithm change:
//
//	go test -run TestGolden -update .
//
// and review the diff of testdata/golden/ like any other code change.
var update = flag.Bool("update", false, "rewrite golden files under testdata/golden/")

const goldenDir = "testdata/golden"

// goldenGraph loads the committed fixture, regenerating it under -update.
// The fixture is a 400-vertex DC-SBM social graph: community structure for
// the multilevel path, degree skew so vertex and edge balance disagree.
func goldenGraph(t *testing.T) *Graph {
	t.Helper()
	path := filepath.Join(goldenDir, "social-400.txt")
	if *update {
		g, _ := GenerateSocialGraph(SocialGraphConfig{
			N: 400, Communities: 4, AvgDegree: 10, InFraction: 0.85,
			DegreeExponent: 2, Seed: 1234,
		})
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteEdgeList(f, g); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	defer f.Close()
	g, err := ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkGolden formats the assignment and compares it byte-for-byte with the
// committed expectation (rewriting it under -update).
func checkGolden(t *testing.T, name string, a *Assignment) {
	t.Helper()
	var buf bytes.Buffer
	for v, p := range a.Parts {
		fmt.Fprintf(&buf, "%d %d\n", v, p)
	}
	path := filepath.Join(goldenDir, name)
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		wantLines := bytes.Split(bytes.TrimSuffix(want, []byte("\n")), []byte("\n"))
		diffs := 0
		for v, p := range a.Parts {
			line := fmt.Sprintf("%d %d", v, p)
			if v >= len(wantLines) || line != string(wantLines[v]) {
				diffs++
			}
		}
		t.Fatalf("%s diverged from the golden partition (%d/%d vertices moved).\n"+
			"If this is an intentional algorithm change, regenerate with:\n"+
			"\tgo test -run TestGolden -update .\nand review the diff.",
			name, diffs, len(a.Parts))
	}
}

// sanity guards the goldens themselves: a committed expectation must be a
// valid, balanced, non-trivial partition — a golden file of garbage would
// otherwise lock garbage in.
func sanity(t *testing.T, g *Graph, res *Result, k int, eps float64) {
	t.Helper()
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Assignment.K != k {
		t.Fatalf("K = %d, want %d", res.Assignment.K, k)
	}
	ws, err := StandardWeights(g, WeightVertices, WeightEdges)
	if err != nil {
		t.Fatal(err)
	}
	if !IsBalanced(res.Assignment, ws, eps+0.03) {
		t.Fatalf("golden partition imbalance %.4f exceeds ε+slack", MaxImbalance(res.Assignment, ws))
	}
	if res.EdgeLocality < 0.3 {
		t.Fatalf("golden partition locality %.3f is implausibly poor", res.EdgeLocality)
	}
}

func TestGoldenBisect(t *testing.T) {
	g := goldenGraph(t)
	res, err := Partition(g, Options{K: 2, Seed: 42, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	sanity(t, g, res, 2, 0.05)
	checkGolden(t, "bisect-k2-seed42.parts", res.Assignment)
}

func TestGoldenRecursiveKWay(t *testing.T) {
	g := goldenGraph(t)
	// k=5 exercises the asymmetric split path of recursive bisection.
	res, err := Partition(g, Options{K: 5, Seed: 42, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	sanity(t, g, res, 5, 0.05)
	checkGolden(t, "kway-k5-seed42.parts", res.Assignment)
}

func TestGoldenMultilevel(t *testing.T) {
	g := goldenGraph(t)
	// CoarsenTo below n forces a real hierarchy on the 400-vertex fixture.
	res, err := Partition(g, Options{
		K: 2, Seed: 42, Iterations: 60,
		Multilevel: true, CoarsenTo: 150, RefineIterations: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	sanity(t, g, res, 2, 0.05)
	checkGolden(t, "multilevel-k2-seed42.parts", res.Assignment)
}

// baselineSanity guards the baseline-engine goldens: these engines promise
// weaker balance than GD (Fennel caps only vertex count, SHP only a fixed
// combined dimension), so the check is validity, non-trivial locality and a
// sane vertex balance rather than the full ε guarantee.
func baselineSanity(t *testing.T, g *Graph, res *Result, k int) {
	t.Helper()
	if err := res.Assignment.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.Assignment.K != k {
		t.Fatalf("K = %d, want %d", res.Assignment.K, k)
	}
	if res.EdgeLocality < 0.3 {
		t.Fatalf("golden partition locality %.3f is implausibly poor", res.EdgeLocality)
	}
	if res.Imbalances[0] > 0.25 {
		t.Fatalf("golden partition vertex imbalance %.3f is implausibly lopsided", res.Imbalances[0])
	}
}

// TestGoldenFennel and TestGoldenSHP pin the baseline engines' exact output
// at seed 42 — the same anchors the daemon determinism suite compares its
// HTTP responses against (cmd/mdbgpd). Default iterations are used so the
// library options canonicalize identically to a bare
// ?k=4&seed=42&engine=... daemon request.
func TestGoldenFennel(t *testing.T) {
	g := goldenGraph(t)
	res, err := Partition(g, Options{Engine: "fennel", K: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	baselineSanity(t, g, res, 4)
	checkGolden(t, "fennel-k4-seed42.parts", res.Assignment)
}

func TestGoldenSHP(t *testing.T) {
	g := goldenGraph(t)
	res, err := Partition(g, Options{Engine: "shp", K: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	baselineSanity(t, g, res, 4)
	checkGolden(t, "shp-k4-seed42.parts", res.Assignment)
}

// goldenDelta loads the committed ~1%-churn delta fixture against the
// social-400 graph, regenerating it deterministically under -update.
func goldenDelta(t *testing.T, g *Graph) *EdgeDelta {
	t.Helper()
	path := filepath.Join(goldenDir, "delta-400.txt")
	if *update {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteEdgeDelta(f, gen.PerturbDelta(g, 100, 7, 13)); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("missing delta fixture (run with -update to create): %v", err)
	}
	defer f.Close()
	d, err := ParseEdgeDelta(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestGoldenIncremental pins the full incremental scenario: cold base solve,
// committed edge delta, warm-started re-solve — the delta parser, the
// application semantics and the warm trajectory are all locked by one file.
func TestGoldenIncremental(t *testing.T) {
	g := goldenGraph(t)
	base, err := Partition(g, Options{K: 4, Seed: 42, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	target, stats := ApplyEdgeDelta(g, goldenDelta(t, g))
	if stats.AddedNew == 0 || stats.RemovedExisting == 0 {
		t.Fatalf("degenerate delta fixture: %+v", stats)
	}
	if churn := stats.Churn(g.M()); churn > 0.05 {
		t.Fatalf("delta fixture churn %.3f is no longer small", churn)
	}
	res, err := PartitionWarm(target, base.Assignment.Parts, Options{K: 4, Seed: 42, Iterations: 60})
	if err != nil {
		t.Fatal(err)
	}
	sanity(t, target, res, 4, 0.05)
	checkGolden(t, "incremental-k4-seed42.parts", res.Assignment)
}

// TestGoldenParallelismInvariance re-runs a golden configuration at several
// worker counts against the same committed file — the golden files double
// as cross-worker determinism anchors.
func TestGoldenParallelismInvariance(t *testing.T) {
	g := goldenGraph(t)
	for _, p := range []int{1, 2, 8} {
		res, err := Partition(g, Options{K: 2, Seed: 42, Iterations: 60, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		// Never update from here; the p=0 default path in TestGoldenBisect
		// owns the file.
		if *update {
			continue
		}
		checkGolden(t, "bisect-k2-seed42.parts", res.Assignment)
	}
}
