module mdbgp

go 1.24
