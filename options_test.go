package mdbgp

import (
	"reflect"
	"strings"
	"testing"
)

func TestCanonicalFillsDefaults(t *testing.T) {
	c := Options{}.Canonical()
	want := Options{Engine: "gd", K: 2, Epsilon: 0.05, Iterations: 100, StepLength: 2, Projection: "alternating-oneshot", Reorder: "none"}
	if !reflect.DeepEqual(c, want) {
		t.Fatalf("Canonical() = %+v, want %+v", c, want)
	}
	// Canonical is idempotent.
	if !reflect.DeepEqual(c.Canonical(), c) {
		t.Fatalf("Canonical not idempotent: %+v", c.Canonical())
	}
}

func TestCanonicalEngineAlias(t *testing.T) {
	// The deprecated Multilevel flag is an alias for Engine = "multilevel":
	// both spellings canonicalize — and therefore fingerprint — identically.
	alias := Options{Multilevel: true}.Canonical()
	explicit := Options{Engine: "multilevel"}.Canonical()
	if !reflect.DeepEqual(alias, explicit) {
		t.Fatalf("alias %+v != explicit %+v", alias, explicit)
	}
	if alias.Engine != "multilevel" || !alias.Multilevel {
		t.Fatalf("alias did not resolve: %+v", alias)
	}
	// An explicit engine wins over a stale Multilevel flag: the flag is
	// recomputed from the engine so the two can never disagree.
	c := Options{Engine: "fennel", Multilevel: true}.Canonical()
	if c.Engine != "fennel" || c.Multilevel {
		t.Fatalf("explicit engine lost to the deprecated alias: %+v", c)
	}
	if c.CoarsenTo != 0 || c.ClusterSize != 0 || c.RefineIterations != 0 {
		t.Fatalf("multilevel knobs survived on a non-multilevel engine: %+v", c)
	}
}

func TestCanonicalMultilevelKnobs(t *testing.T) {
	c := Options{Multilevel: true}.Canonical()
	if c.CoarsenTo != 8000 || c.ClusterSize != 32 || c.RefineIterations != 16 {
		t.Fatalf("multilevel defaults not filled: %+v", c)
	}
	// Multilevel knobs on a non-multilevel request are inert and must be
	// zeroed so near-duplicate requests share a fingerprint.
	c = Options{CoarsenTo: 500, ClusterSize: 8, RefineIterations: 3}.Canonical()
	if c.CoarsenTo != 0 || c.ClusterSize != 0 || c.RefineIterations != 0 {
		t.Fatalf("inert multilevel knobs survived canonicalization: %+v", c)
	}
}

func TestFingerprintStability(t *testing.T) {
	fp := Options{}.Fingerprint()
	if len(fp) != 64 || strings.Trim(fp, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not a sha256 hex digest", fp)
	}

	// Explicit defaults fingerprint the same as the zero value.
	explicit := Options{K: 2, Epsilon: 0.05, Iterations: 100, StepLength: 2, Projection: "alternating-oneshot"}
	if explicit.Fingerprint() != fp {
		t.Fatal("explicit defaults should fingerprint identically to zero options")
	}

	// Parallelism never affects the fingerprint (results are bit-identical
	// at any worker count, so the cache may serve across worker counts).
	if (Options{Parallelism: 8}).Fingerprint() != fp {
		t.Fatal("Parallelism leaked into the fingerprint")
	}

	// Spelled-out inert kernel knobs fingerprint like the zero value:
	// reorder=none is the default, and a resync period without the
	// incremental path (like a warm budget without a warm start) is inert.
	if (Options{Reorder: "none"}).Fingerprint() != fp {
		t.Fatal("explicit Reorder=none should fingerprint identically to zero options")
	}
	if (Options{ResyncEvery: 5}).Fingerprint() != fp {
		t.Fatal("ResyncEvery without IncrementalGradient leaked into the fingerprint")
	}
	if (Options{IncrementalGradient: true, ResyncEvery: 16}).Fingerprint() != (Options{IncrementalGradient: true}).Fingerprint() {
		t.Fatal("explicit default ResyncEvery=16 should fingerprint like the implicit default")
	}

	// Every solver-relevant field must perturb the fingerprint.
	perturbed := []Options{
		{K: 4},
		{Epsilon: 0.1},
		{Iterations: 50},
		{StepLength: 1},
		{Projection: "dykstra"},
		{Seed: 7},
		{DisableAdaptiveStep: true},
		{DisableVertexFixing: true},
		{Multilevel: true},
		{Multilevel: true, CoarsenTo: 100},
		{Multilevel: true, ClusterSize: 4},
		{Multilevel: true, RefineIterations: 2},
		{Weights: [][]float64{{1, 2, 3}}},
		{Reorder: "degree"},
		{Reorder: "bfs"},
		{Reorder: "rcm"},
		{IncrementalGradient: true},
		{IncrementalGradient: true, ResyncEvery: 4},
	}
	seen := map[string]int{fp: -1}
	for i, o := range perturbed {
		got := o.Fingerprint()
		if j, dup := seen[got]; dup {
			t.Errorf("options %d and %d collide on fingerprint %s", i, j, got)
		}
		seen[got] = i
	}
}

// TestFingerprintEngineCollisionAudit is the cache-safety audit of the
// engine registry: for one graph-shaped option set, every registered engine
// — cold and warm (for warm-capable engines), deprecated alias and explicit
// spelling — must yield a distinct fingerprint. A collision here would let
// the content-addressed result cache serve one engine's assignment for
// another.
func TestFingerprintEngineCollisionAudit(t *testing.T) {
	warm := []int32{0, 1, 0, 1}
	seen := map[string]string{}
	record := func(label, fp string) {
		t.Helper()
		if prior, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision: %q and %q both map to %s", prior, label, fp)
		}
		seen[fp] = label
	}
	builtins := 0
	for _, info := range Engines() {
		if strings.HasPrefix(info.Name, "test-") {
			continue // engines registered by other tests; audited by their own suite
		}
		builtins++
		record("cold "+info.Name, Options{Engine: info.Name, K: 4, Seed: 42}.Fingerprint())
		if info.WarmStart {
			record("warm "+info.Name, Options{Engine: info.Name, K: 4, Seed: 42, WarmAssignment: warm}.Fingerprint())
		}
	}
	// The deprecated alias must NOT add a distinct fingerprint: it is the
	// same solve as the explicit multilevel engine.
	alias := Options{Multilevel: true, K: 4, Seed: 42}.Fingerprint()
	explicit := Options{Engine: "multilevel", K: 4, Seed: 42}.Fingerprint()
	if alias != explicit {
		t.Fatalf("Multilevel alias fingerprints differently from engine=multilevel:\n%s\n%s", alias, explicit)
	}
	if len(seen) != builtins+2 { // 6 cold + warm gd + warm multilevel
		t.Fatalf("audit covered %d fingerprints, want %d", len(seen), builtins+2)
	}
}

func TestFingerprintWeightsContent(t *testing.T) {
	a := Options{Weights: [][]float64{{1, 2}, {3, 4}}}
	b := Options{Weights: [][]float64{{1, 2, 3, 4}}}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("weight vector boundaries must be part of the fingerprint")
	}
	c := Options{Weights: [][]float64{{1, 2}, {3, 4}}}
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("equal weights must fingerprint equally")
	}
}

func TestCanonicalPartitionEquivalence(t *testing.T) {
	g, _ := testGraph()
	o := Options{Seed: 5, Iterations: 40}
	r1, err := Partition(g, o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Partition(g, o.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	for v := range r1.Assignment.Parts {
		if r1.Assignment.Parts[v] != r2.Assignment.Parts[v] {
			t.Fatalf("canonicalized options changed the partition at vertex %d", v)
		}
	}
}
