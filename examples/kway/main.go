// k-way partitioning: recursive bisection for k parts, including
// non-powers-of-two (§3.3 of the paper). Demonstrates the ε budget across
// recursion levels and the locality-vs-k tradeoff.
package main

import (
	"fmt"
	"log"

	"mdbgp"
)

func main() {
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N:              12000,
		Communities:    24,
		AvgDegree:      24,
		InFraction:     0.6,
		MicroSize:      25,
		MicroFraction:  0.2,
		DegreeExponent: 2.2,
		Seed:           5,
	})
	ws, err := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d\n\n", g.N(), g.M())
	fmt.Printf("%4s %12s %18s %18s\n", "k", "locality %", "vertex imbalance %", "edge imbalance %")
	for _, k := range []int{2, 3, 4, 6, 8, 12, 16} {
		res, err := mdbgp.Partition(g, mdbgp.Options{
			K: k, Epsilon: 0.05, Weights: ws, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d %11.1f%% %17.2f%% %17.2f%%\n",
			k, 100*res.EdgeLocality,
			100*res.Imbalances[0], 100*res.Imbalances[1])
		// Every part must be non-empty and ε-balanced even for odd k.
		for p, s := range res.Assignment.PartSizes() {
			if s == 0 {
				log.Fatalf("k=%d: part %d is empty", k, p)
			}
		}
	}
	fmt.Println("\nlocality decreases with k (more cuts), balance holds for every k — including 3, 6, 12")
}
