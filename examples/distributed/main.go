// Distributed processing: reproduce the paper's §1 motivating experiment in
// miniature. Run PageRank on a simulated 16-worker Giraph cluster under four
// partitioning policies — hash, vertex-balanced, edge-balanced and
// vertex+edge-balanced — and compare per-worker times and communication.
//
// The takeaway (Figure 1 / Figure 7 of the paper): one-dimensional balance
// leaves a straggler worker that dominates the superstep wall time;
// two-dimensional balance gives up a little locality but wins overall.
package main

import (
	"fmt"
	"log"

	"mdbgp"
)

func main() {
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N:              20000,
		Communities:    32,
		AvgDegree:      40,
		InFraction:     0.55,
		MicroSize:      25,
		MicroFraction:  0.2,
		DegreeExponent: 1.4, // heavy skew: hubs make 1-D balance insufficient
		Seed:           3,
	})
	const workers = 16
	fmt.Printf("graph: n=%d m=%d; cluster: %d workers\n\n", g.N(), g.M(), workers)

	ws, err := mdbgp.StandardWeights(g, mdbgp.WeightVertices, mdbgp.WeightEdges)
	if err != nil {
		log.Fatal(err)
	}

	policies := []struct {
		name    string
		weights [][]float64
	}{
		{"hash", nil},
		{"vertex", ws[:1]},
		{"edge", ws[1:2]},
		{"vertex+edge", ws},
	}

	var hashWall float64
	bestName, bestMax := "", 0.0
	fmt.Printf("%-12s %9s %9s %9s %9s %10s\n",
		"policy", "local %", "busy avg", "busy max", "comm GB", "speedup %")
	for _, p := range policies {
		var asgn *mdbgp.Assignment
		if p.weights == nil {
			// Stateless hash assignment: part = hash(v) mod k.
			asgn = hashAssign(g.N(), workers)
		} else {
			res, err := mdbgp.Partition(g, mdbgp.Options{
				K: workers, Epsilon: 0.05, Weights: p.weights, Seed: 42,
			})
			if err != nil {
				log.Fatal(err)
			}
			asgn = res.Assignment
		}
		cluster, err := mdbgp.NewCluster(g, asgn, mdbgp.DefaultCostModel())
		if err != nil {
			log.Fatal(err)
		}
		_, stats := mdbgp.SimulatePageRank(cluster, 30, 0.85)
		mean, max, _ := stats.WorkerBusyStats()
		wall := stats.TotalWall()
		if p.name == "hash" {
			hashWall = wall
		}
		speedup := 100 * (hashWall - wall) / hashWall
		if bestName == "" || max < bestMax {
			bestName, bestMax = p.name, max
		}
		fmt.Printf("%-12s %8.1f%% %8.1fs %8.1fs %9.2f %+9.1f\n",
			p.name, 100*mdbgp.EdgeLocality(g, asgn), mean, max,
			stats.TotalCommGB(), speedup)
	}
	fmt.Printf("\nsmallest straggler (busy max): %s — balanced partitions avoid the slowest-worker bottleneck\n", bestName)
}

func hashAssign(n, k int) *mdbgp.Assignment {
	a := &mdbgp.Assignment{Parts: make([]int32, n), K: k}
	for v := 0; v < n; v++ {
		x := uint64(v) * 0x9e3779b97f4a7c15
		x ^= x >> 29
		a.Parts[v] = int32(x % uint64(k))
	}
	return a
}
