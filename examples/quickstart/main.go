// Quickstart: build a small graph, partition it into two parts balanced on
// vertices and edges simultaneously, and inspect the result.
package main

import (
	"fmt"
	"log"

	"mdbgp"
)

func main() {
	// A synthetic social network with four planted communities and a skewed
	// degree distribution — the regime where balancing only vertices OR only
	// edges fails, motivating multi-dimensional balance.
	g, communities := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N:              2000,
		Communities:    4,
		AvgDegree:      16,
		InFraction:     0.85,
		DegreeExponent: 1.8, // heavy tail: a few hubs carry many edges
		Seed:           7,
	})
	fmt.Printf("graph: %d vertices, %d edges, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	// Partition into 2 parts, each holding 50%±5% of the vertices AND 50%±5%
	// of the edges, while keeping as many edges uncut as possible.
	res, err := mdbgp.Partition(g, mdbgp.Options{
		K:       2,
		Epsilon: 0.05,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("edge locality: %.1f%% (uncut edges stay on one worker)\n", 100*res.EdgeLocality)
	fmt.Printf("cut edges:     %d of %d\n", res.CutEdges, g.M())
	fmt.Printf("vertex imbalance: %.2f%%  edge imbalance: %.2f%%\n",
		100*res.Imbalances[0], 100*res.Imbalances[1])

	// The partition should align with the planted communities.
	sizes := res.Assignment.PartSizes()
	fmt.Printf("part sizes: %v\n", sizes)
	agree := 0
	for v, c := range communities {
		if (c < 2) == (res.Assignment.Parts[v] == 0) {
			agree++
		}
	}
	frac := float64(agree) / float64(g.N())
	if frac < 0.5 {
		frac = 1 - frac
	}
	fmt.Printf("agreement with planted communities: %.1f%%\n", 100*frac)
}
