// Multi-dimensional balance: partition a skewed graph on four simultaneous
// weight functions — vertices, edges, neighbor-degree sums and PageRank —
// the d = 4 experiment of the paper's Appendix C.1 (Table 3).
//
// One-dimensional partitioners cannot do this: balancing only vertex counts
// leaves PageRank mass (a proxy for request load) concentrated on one
// worker, and vice versa.
package main

import (
	"fmt"
	"log"

	"mdbgp"
)

func main() {
	g, _ := mdbgp.GenerateSocialGraph(mdbgp.SocialGraphConfig{
		N:              5000,
		Communities:    8,
		AvgDegree:      24,
		InFraction:     0.7,
		MicroSize:      25,
		MicroFraction:  0.15,
		DegreeExponent: 1.6,
		Seed:           11,
	})
	fmt.Printf("graph: n=%d m=%d max degree %d\n", g.N(), g.M(), g.MaxDegree())

	ws, err := mdbgp.StandardWeights(g,
		mdbgp.WeightVertices,
		mdbgp.WeightEdges,
		mdbgp.WeightNeighborDegrees,
		mdbgp.WeightPageRank,
	)
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"vertices", "edges", "neighbor-degrees", "pagerank"}

	// First, show the problem: balance ONLY vertex counts and look at what
	// happens to the other dimensions.
	oneDim, err := mdbgp.Partition(g, mdbgp.Options{
		K: 2, Epsilon: 0.05, Seed: 42,
		Weights: ws[:1],
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n1-D partition (vertex balance only):")
	fmt.Printf("  locality %.1f%%\n", 100*oneDim.EdgeLocality)
	for j, name := range names {
		fmt.Printf("  %-18s imbalance %6.2f%%\n", name, 100*mdbgp.Imbalance(oneDim.Assignment, ws[j]))
	}

	// Now balance all four dimensions at once.
	fourDim, err := mdbgp.Partition(g, mdbgp.Options{
		K: 2, Epsilon: 0.05, Seed: 42,
		Weights: ws,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n4-D partition (all dimensions balanced):")
	fmt.Printf("  locality %.1f%%\n", 100*fourDim.EdgeLocality)
	for j, name := range names {
		fmt.Printf("  %-18s imbalance %6.2f%%\n", name, 100*mdbgp.Imbalance(fourDim.Assignment, ws[j]))
	}

	if !mdbgp.IsBalanced(fourDim.Assignment, ws, 0.051) {
		log.Fatal("4-D partition failed ε-balance")
	}
	fmt.Println("\nall four dimensions within ε = 5% — at a modest locality cost")
}
