package mdbgp

import (
	"fmt"
	"testing"
)

// Property tests for the vertex-reordering and incremental-gradient knobs.
//
// Reorder is a kernel-layout detail with a hard contract: for any engine,
// any ordering and any worker count, the partition is byte-identical to the
// unreordered run (the layout keeps per-row arc order, so per-coordinate
// floating-point sums associate exactly as before, and results scatter back
// through the inverse permutation). IncrementalGradient is the opposite kind
// of knob — a genuinely different trajectory in the last ulps — so it gets
// its own golden rather than an identity claim; what it shares with Reorder
// is worker-count invariance.

// TestReorderByteIdentityAcrossEngines: every registered engine × every
// ordering × workers {1, 2, 8} produces the exact partition of the
// unreordered single-worker run. Engines that never consult Reorder pass
// trivially; the gd-core engines are the ones under test.
func TestReorderByteIdentityAcrossEngines(t *testing.T) {
	g := goldenGraph(t)
	for _, engine := range EngineNames() {
		opts := Options{Engine: engine, K: 4, Seed: 42, Iterations: 30}
		base, err := Partition(g, opts)
		if err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
		for _, ord := range ReorderNames() {
			for _, p := range []int{1, 2, 8} {
				o := opts
				o.Reorder = ord
				o.Parallelism = p
				res, err := Partition(g, o)
				if err != nil {
					t.Fatalf("engine %s reorder %s workers %d: %v", engine, ord, p, err)
				}
				for v := range base.Assignment.Parts {
					if res.Assignment.Parts[v] != base.Assignment.Parts[v] {
						t.Fatalf("engine %s reorder %s workers %d: partition diverged at vertex %d — reordering must be invisible in the output",
							engine, ord, p, v)
					}
				}
			}
		}
	}
}

// TestReorderRejectsUnknownOrdering: the validation path fails fast at every
// entry point rather than silently running unreordered.
func TestReorderRejectsUnknownOrdering(t *testing.T) {
	g, _ := testGraph()
	if _, err := Partition(g, Options{K: 2, Reorder: "hilbert"}); err == nil {
		t.Fatal("unknown ordering accepted")
	}
	if err := ValidateReorder("hilbert"); err == nil {
		t.Fatal("ValidateReorder accepted an unknown ordering")
	}
	for _, ord := range ReorderNames() {
		if err := ValidateReorder(ord); err != nil {
			t.Fatalf("listed ordering %q rejected: %v", ord, err)
		}
	}
}

// TestFingerprintReorderPairwiseDistinct: orderings are part of the request
// fingerprint, so no two orderings (or incremental-gradient configurations)
// may collide on a cache key — a collision would serve one ordering's cached
// result for another's request.
func TestFingerprintReorderPairwiseDistinct(t *testing.T) {
	base := Options{K: 4, Seed: 42}
	var fps []string
	var labels []string
	for _, ord := range ReorderNames() {
		o := base
		o.Reorder = ord
		fps = append(fps, o.Fingerprint())
		labels = append(labels, "reorder="+ord)
	}
	for _, inc := range []Options{
		{K: 4, Seed: 42, IncrementalGradient: true},
		{K: 4, Seed: 42, IncrementalGradient: true, ResyncEvery: 4},
		{K: 4, Seed: 42, IncrementalGradient: true, Reorder: "degree"},
	} {
		fps = append(fps, inc.Fingerprint())
		labels = append(labels, fmt.Sprintf("incgrad resync=%d reorder=%q", inc.ResyncEvery, inc.Reorder))
	}
	for i := range fps {
		for j := i + 1; j < len(fps); j++ {
			if fps[i] == fps[j] {
				t.Fatalf("fingerprint collision between %s and %s", labels[i], labels[j])
			}
		}
	}
}

// TestGoldenIncrementalGradient pins the incremental-gradient trajectory
// (with the reordered kernel layered on top — the combination the daemon's
// speed-of-light configuration runs) and doubles as its cross-worker
// determinism anchor: the delta scatter is serial and ordered, so workers
// 1, 2 and 8 must all reproduce the committed bytes.
func TestGoldenIncrementalGradient(t *testing.T) {
	g := goldenGraph(t)
	opts := Options{
		K: 2, Seed: 42, Iterations: 60,
		IncrementalGradient: true, Reorder: "degree",
	}
	res, err := Partition(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	sanity(t, g, res, 2, 0.05)
	checkGolden(t, "incgrad-k2-seed42.parts", res.Assignment)
	for _, p := range []int{1, 2, 8} {
		o := opts
		o.Parallelism = p
		wres, err := Partition(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if *update {
			continue
		}
		checkGolden(t, "incgrad-k2-seed42.parts", wres.Assignment)
	}
}
