package mdbgp

import (
	"fmt"

	"mdbgp/internal/metis"
	"mdbgp/internal/multilevel"
	"mdbgp/internal/reorder"
)

// Prepared artifacts are the assignment-independent half of a solve — work
// that depends only on the graph's structure (and a handful of
// hierarchy-shaping options), not on which partition comes out. A front end
// that sees the same graph repeatedly (the daemon's prep cache) builds the
// artifact once, keyed by graph content hash plus the artifact's parameters,
// and injects it into every subsequent solve via Options.PrepLayout /
// Options.PrepHierarchy. Injection is strictly an amortization: a solve with
// an artifact injected is byte-identical to one that rebuilds it, the engines
// re-verify every artifact against the graph and options actually being
// solved (a stale or mismatched injection degrades to a rebuild, never to a
// wrong answer), and neither field participates in Fingerprint.

// PreparedLayout is a reusable reorder layout for one specific graph: the
// bandwidth-reduced CSR mirror the gradient engines would otherwise rebuild
// on every solve (Options.Reorder). It is immutable and safe to inject into
// concurrent solves — each solve clones it, sharing the permuted CSR but
// never scratch buffers.
type PreparedLayout struct {
	graph  *Graph
	method reorder.Method
	layout *reorder.Layout
}

// PrepareLayout builds the reorder layout a gradient-engine solve of g with
// Options.Reorder = method would build inline. The method must name a real
// ordering ("degree", "bfs", "rcm"): "none" builds no layout and is an error
// rather than a silent no-op artifact.
func PrepareLayout(g *Graph, method string) (*PreparedLayout, error) {
	m, err := reorder.Parse(method)
	if err != nil {
		return nil, err
	}
	if m == reorder.None {
		return nil, fmt.Errorf("mdbgp: reorder %q builds no layout; nothing to prepare", method)
	}
	offsets, adj := g.CSR()
	return &PreparedLayout{graph: g, method: m, layout: reorder.NewLayout(offsets, adj, nil, m)}, nil
}

// Method returns the canonical reorder method name the layout was built for
// — one component of a prep-cache key.
func (p *PreparedLayout) Method() string { return p.method.String() }

// Bytes estimates the heap footprint of the layout for cache byte accounting.
func (p *PreparedLayout) Bytes() int64 { return p.layout.Bytes() }

// PreparedHierarchy is a reusable coarsening hierarchy for one specific graph
// under one specific engine: the multilevel V-cycle's cluster hierarchy or
// the METIS comparator's matching hierarchy. The artifact depends on the
// solve seed and the engine's coarsening knobs, so prep-cache keys must cover
// them (see the engines' Prep docs); the engines re-verify seed and knobs at
// injection time regardless. Immutable and safe to inject into concurrent
// solves.
type PreparedHierarchy struct {
	engine string
	ml     *multilevel.Prep
	mt     *metis.Prep
}

// PrepareHierarchy builds the coarsening hierarchy a cold solve of g with
// these options would build inline. Only engines that coarsen — "multilevel"
// and "metis" — have a hierarchy to prepare; any other resolved engine is an
// error. Warm-started multilevel solves skip coarsening entirely, so front
// ends should not prepare hierarchies for warm traffic.
func PrepareHierarchy(g *Graph, opts Options) (*PreparedHierarchy, error) {
	c := opts.Canonical()
	ws, err := resolveWeights(g, c)
	if err != nil {
		return nil, err
	}
	switch c.Engine {
	case "multilevel":
		gdOpt, err := gdCoreOptions(g, c)
		if err != nil {
			return nil, err
		}
		prep := multilevel.BuildPrep(g, ws, multilevel.Options{
			GD:               gdOpt,
			CoarsenTo:        c.CoarsenTo,
			ClusterSize:      c.ClusterSize,
			RefineIterations: c.RefineIterations,
		})
		return &PreparedHierarchy{engine: c.Engine, ml: prep}, nil
	case "metis":
		prep := metis.BuildPrep(g, ws, metis.Options{UBFactor: 1 + c.Epsilon, Seed: c.Seed})
		return &PreparedHierarchy{engine: c.Engine, mt: prep}, nil
	}
	return nil, fmt.Errorf("mdbgp: engine %q builds no coarsening hierarchy; nothing to prepare", c.Engine)
}

// Engine returns the resolved engine name the hierarchy was built for — one
// component of a prep-cache key.
func (p *PreparedHierarchy) Engine() string { return p.engine }

// Bytes estimates the heap footprint of the hierarchy for cache byte
// accounting.
func (p *PreparedHierarchy) Bytes() int64 {
	if p.ml != nil {
		return p.ml.Bytes()
	}
	return p.mt.Bytes()
}
