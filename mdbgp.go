// Package mdbgp is a Go implementation of Multi-Dimensional Balanced Graph
// Partitioning via Projected Gradient Descent (Avdiukhin, Pupyrev,
// Yaroslavtsev — VLDB / arXiv:1902.03522, 2019).
//
// Given an undirected graph and d positive vertex weight functions, the
// partitioner splits the vertices into k parts so that every part's total
// weight is within (1±ε)·W/k for every weight function simultaneously, while
// maximizing edge locality (the fraction of uncut edges). The algorithm runs
// randomized projected gradient ascent on a continuous relaxation of the
// max-uncut objective and rounds the fractional solution; k-way partitions
// use recursive bisection.
//
// Quick start:
//
//	b := mdbgp.NewBuilder(0)
//	b.AddEdge(0, 1) // ...
//	g := b.Build()
//	res, err := mdbgp.Partition(g, mdbgp.Options{K: 4, Epsilon: 0.05})
//	// res.Assignment.Parts[v] is the part of vertex v.
//
// # Incremental repartitioning
//
// Because GD refines a fractional solution, it is uniquely warm-startable:
// when a graph changes by a small edge delta, the previous partition is a
// near-feasible, near-optimal starting point, and re-solving from it costs a
// fraction of a cold solve. ParseEdgeDelta/ApplyEdgeDelta materialize the
// updated graph from "+u v"/"-u v" lines, and PartitionWarm (equivalently,
// Options.WarmAssignment) seeds the solver with the prior assignment: each
// recursive bisection starts from the damped ±1 encoding of the prior parts
// instead of the origin, skips the cold-start noise and spends a reduced
// iteration budget (Options.WarmIterations). The warm solve runs the same
// projection constraints, rounding and balance repair as a cold one, so the
// ε-balance guarantee is identical; only the trajectory — and therefore the
// time to reach it — changes. cmd/mdbgpd serves this as delta jobs
// (POST /v1/partition?base=...) and cmd/mdbgp as the -base/-delta flags.
//
// # Engines
//
// Every solver dispatches through one registry (Engine, RegisterEngine,
// Engines): Options.Engine selects "gd" (the default), the "multilevel"
// V-cycle, the "fennel"/"blp"/"shp" baselines or the "metis" comparator,
// each with declared capabilities (warm-start and multi-dimensional weight
// support). Options.Fingerprint covers the engine name, so distinct engines
// never share a content-addressed cache entry; Options.Multilevel remains as
// a deprecated alias canonicalizing to Engine = "multilevel".
//
// The packages under internal/ contain the full system: the GD core, exact
// and iterative projection algorithms, baseline partitioners (Hash, Spinner,
// BLP, SHP), a METIS-style multilevel multi-constraint comparator, a
// Giraph-like cluster simulator with the paper's four workloads, and the
// harness regenerating every table and figure of the paper (cmd/experiments).
//
// # Parallel execution
//
// Each GD iteration is an SpMV gradient step plus a coordinate-separable
// projection — both embarrassingly parallel (Theorem 1.1: O(|E|/m) per step
// on m workers) — and sibling subgraphs of the recursive bisection are
// independent. Options.Parallelism controls the worker count for all three
// levels (0 uses every core, 1 forces the serial path); the cmd/mdbgp and
// cmd/experiments binaries expose it as the -p flag. Floating point
// reductions are combined in a fixed chunk order and every recursion branch
// derives its own RNG stream, so for a fixed Seed the partition is
// bit-identical regardless of Parallelism.
//
// # Multilevel execution
//
// Options.Multilevel switches each bisection to a V-cycle (the -multilevel
// flag on both binaries): the graph is coarsened by size-capped greedy
// clustering — multi-dimensional vertex weights and cut weights are
// preserved exactly at every level — GD runs on the coarsest level, and the
// fractional solution is prolongated level by level as a warm start for a
// shrinking budget of refinement iterations, with rounding and balance
// repair only at the finest level. Direct GD pays O(|E|) per iteration for
// the full budget; the V-cycle pays one contraction pass per level plus a
// few refinement sweeps, which on large community-structured graphs reaches
// the same edge locality several times faster (see BenchmarkMultilevel* and
// BENCH_multilevel.json). Coarsening, like the rest of the engine, is
// deterministic for a fixed Seed at any Parallelism. Graphs at or below
// Options.CoarsenTo fall back to direct GD transparently.
package mdbgp

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"strings"

	"mdbgp/internal/gen"
	"mdbgp/internal/graph"
	"mdbgp/internal/obs"
	"mdbgp/internal/partition"
	"mdbgp/internal/project"
	"mdbgp/internal/reorder"
	"mdbgp/internal/weights"
)

// Graph is an immutable undirected graph in CSR form.
type Graph = graph.Graph

// Builder accumulates edges for a Graph.
type Builder = graph.Builder

// Edge is an undirected edge for FromEdges.
type Edge = graph.Edge

// Assignment maps every vertex to one of K parts.
type Assignment = partition.Assignment

// Span is one timed region of an observability trace (see Options.Observer
// and NewTrace). A nil *Span is a valid no-op sink.
type Span = obs.Span

// SpanView is the immutable JSON-ready snapshot of a Span tree, produced by
// Span.Snapshot.
type SpanView = obs.SpanView

// NewTrace starts an observability span tree rooted at a span with the given
// name. Hand the root (or any descendant) to Options.Observer to have the
// solve record its phases — per-bisection GD, multilevel coarsening and
// refinement, rounding — underneath it, then export with Span.Snapshot.
func NewTrace(name string) *Span { return obs.NewTrace(name) }

// NewBuilder returns a graph builder for n vertices (the vertex set grows
// automatically as edges are added).
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a graph from an edge list.
func FromEdges(n int, edges []Edge) *Graph { return graph.FromEdges(n, edges) }

// ReadEdgeList parses a whitespace-separated "u v" edge list ('#'/'%'
// comment lines allowed).
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadEdgeListInto streams an edge list into an existing builder, allowing
// callers to accumulate several sources, bound the accepted vertex-id range
// (maxVertexID; 0 means the representation limit, the unbounded mode trusted
// in-process callers like the router's edge hashing use), or interleave
// programmatic AddEdge calls before Build. This is the serving ingest entry
// point for the text codec; binary uploads go through internal/wire instead
// (docs/WIRE_FORMAT.md).
func ReadEdgeListInto(b *Builder, r io.Reader, maxVertexID int) error {
	return graph.ReadEdgeListInto(b, r, maxVertexID)
}

// EngineVersion identifies the generation of the solver algorithms. Results
// are deterministic for a fixed seed within a generation, so caches keyed on
// (EngineVersion, graph hash, options fingerprint) never go stale; bump this
// whenever an intentional algorithm change regenerates the golden outputs so
// persistent or shared caches stop serving the previous generation's
// results.
const EngineVersion = "gd2"

// EdgeDelta is a batch of edge insertions and deletions against a base
// graph — the unit of incremental repartitioning.
type EdgeDelta = graph.Delta

// DeltaStats reports the effective change a delta application made; its
// Churn method is the edge-churn fraction thresholds are defined over.
type DeltaStats = graph.DeltaStats

// ParseEdgeDelta reads "+u v" / "-u v" lines (optional ignored trailing
// weight, '#'/'%' comments) with the same vertex-id hardening as
// ReadEdgeListInto: maxVertexID bounds accepted ids, 0 meaning the
// representation limit.
func ParseEdgeDelta(r io.Reader, maxVertexID int) (*EdgeDelta, error) {
	return graph.ParseDelta(r, maxVertexID)
}

// ApplyEdgeDelta materializes base with the delta applied, leaving base
// untouched. New vertex ids grow the vertex set; removing all edges of a
// vertex keeps it, so assignments stay index-aligned with the base.
func ApplyEdgeDelta(base *Graph, d *EdgeDelta) (*Graph, DeltaStats) {
	return graph.ApplyDelta(base, d)
}

// WriteEdgeDelta writes d in the format ParseEdgeDelta reads.
func WriteEdgeDelta(w io.Writer, d *EdgeDelta) error { return graph.WriteDelta(w, d) }

// ReadAssignment parses "vertex part" lines (the format written by cmd/mdbgp
// and the daemon's /assignment endpoint) into a parts slice indexed by
// vertex id, suitable for Options.WarmAssignment. Vertices never mentioned
// are -1 (no prior opinion); maxVertexID bounds accepted ids (0 means the
// representation limit).
func ReadAssignment(r io.Reader, maxVertexID int) ([]int32, error) {
	return partition.ReadParts(r, maxVertexID)
}

// WriteEdgeList writes the graph as an edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// Weight selects one of the standard balance dimensions studied in the
// paper.
type Weight int

const (
	// WeightVertices balances the number of vertices per part.
	WeightVertices Weight = iota
	// WeightEdges balances the total degree (≈ edges) per part.
	WeightEdges
	// WeightNeighborDegrees balances the sum of neighbor degrees, a proxy
	// for 2-hop neighborhood size.
	WeightNeighborDegrees
	// WeightPageRank balances PageRank mass, a proxy for vertex activity.
	WeightPageRank
)

// String returns the dimension name accepted by ParseWeightDims.
func (w Weight) String() string {
	switch w {
	case WeightVertices:
		return "vertices"
	case WeightEdges:
		return "edges"
	case WeightNeighborDegrees:
		return "neighbor-degrees"
	case WeightPageRank:
		return "pagerank"
	}
	return fmt.Sprintf("weight(%d)", int(w))
}

// ParseWeightDims parses a comma-separated list of balance-dimension names
// — "vertices", "edges", "neighbor-degrees", "pagerank" — as accepted by
// the CLIs and the serving API. Empty entries are dropped; an empty list
// defaults to vertices,edges (the paper's vertex-edge partitioning). The
// second return is the canonical comma-joined form, suitable as a cache-key
// component.
func ParseWeightDims(csv string) ([]Weight, string, error) {
	var dims []Weight
	for _, d := range strings.Split(csv, ",") {
		switch strings.TrimSpace(d) {
		case "vertices":
			dims = append(dims, WeightVertices)
		case "edges":
			dims = append(dims, WeightEdges)
		case "neighbor-degrees":
			dims = append(dims, WeightNeighborDegrees)
		case "pagerank":
			dims = append(dims, WeightPageRank)
		case "":
		default:
			return nil, "", fmt.Errorf("mdbgp: unknown balance dimension %q (want vertices, edges, neighbor-degrees, pagerank)", strings.TrimSpace(d))
		}
	}
	if len(dims) == 0 {
		dims = []Weight{WeightVertices, WeightEdges}
	}
	names := make([]string, len(dims))
	for i, d := range dims {
		names[i] = d.String()
	}
	return dims, strings.Join(names, ","), nil
}

// ValidateProjection reports whether name is an accepted Options.Projection
// value ("" selects the default). Used by front ends to fail fast on typos.
func ValidateProjection(name string) error {
	if name == "" {
		return nil
	}
	_, err := project.ParseMethod(name)
	return err
}

// StandardWeights materializes weight vectors for the requested dimensions.
func StandardWeights(g *Graph, dims ...Weight) ([][]float64, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mdbgp: at least one weight dimension required")
	}
	out := make([][]float64, 0, len(dims))
	for _, d := range dims {
		switch d {
		case WeightVertices:
			out = append(out, weights.Unit(g))
		case WeightEdges:
			out = append(out, weights.Degree(g))
		case WeightNeighborDegrees:
			out = append(out, weights.NeighborDegreeSum(g))
		case WeightPageRank:
			out = append(out, weights.PageRank(g, 0.85, 20))
		default:
			return nil, fmt.Errorf("mdbgp: unknown weight dimension %d", d)
		}
	}
	return out, nil
}

// Options configures Partition. The zero value requests the paper's
// defaults: k = 2, ε = 5%, vertex+edge balance, 100 iterations of adaptive
// gradient ascent with vertex fixing and one-shot alternating projection.
type Options struct {
	// Engine selects the solver by registry name: "gd" (default), a
	// "multilevel" V-cycle, the streaming/label-propagation baselines
	// "fennel", "blp" and "shp", or the "metis" multilevel comparator — see
	// Engines() for the capability matrix. All engines dispatch through the
	// same API and cache machinery; distinct engines never share a cache key
	// (Fingerprint covers the engine name). Unknown names fail Partition.
	Engine string
	// K is the number of parts (default 2). Non-powers of two are handled
	// with asymmetric recursive splits.
	K int
	// Epsilon is the per-dimension balance tolerance (default 0.05).
	Epsilon float64
	// Weights are the balance dimensions; nil defaults to vertex + edge
	// (the paper's vertex-edge partitioning). Each vector must be strictly
	// positive with one entry per vertex.
	Weights [][]float64
	// Iterations is the gradient iteration budget per bisection (default
	// 100).
	Iterations int
	// StepLength scales the per-iteration progress target s·√n/Iterations
	// (default 2, the paper's recommendation).
	StepLength float64
	// Projection selects the projection algorithm: "" or
	// "alternating-oneshot" (default), "alternating", "dykstra", "exact",
	// "nested".
	Projection string
	// Seed makes runs deterministic.
	Seed int64
	// Parallelism is the number of worker goroutines used by the gradient
	// kernels, the projection and concurrent recursive bisection; 0 uses
	// GOMAXPROCS, 1 forces the serial path. For a fixed Seed the result is
	// bit-identical regardless of Parallelism.
	Parallelism int
	// DisableAdaptiveStep freezes the step size (the paper's ablation
	// baseline; normally leave false).
	DisableAdaptiveStep bool
	// DisableVertexFixing turns off snapping of near-integral coordinates.
	DisableVertexFixing bool
	// Multilevel is a deprecated alias for Engine = "multilevel" (the
	// V-cycle: coarsen the graph by size-capped greedy clustering, run GD on
	// the coarsest level, prolongate the fractional solution as a warm
	// start, and spend a small refinement budget per level). Canonical
	// resolves the alias, so Options{Multilevel: true} and
	// Options{Engine: "multilevel"} fingerprint — and solve — identically.
	// When Engine explicitly names a different engine, Multilevel is
	// ignored. Prefer Engine in new code.
	Multilevel bool
	// CoarsenTo stops multilevel coarsening once a level has at most this
	// many vertices (0 = default 8000). Only used when Multilevel is set.
	CoarsenTo int
	// ClusterSize caps coarsening clusters at this multiple of the average
	// vertex weight (0 = default 32). Only used when Multilevel is set.
	ClusterSize int
	// RefineIterations is the finest-level refinement budget of the V-cycle
	// (0 = default 16). Only used when Multilevel is set.
	RefineIterations int
	// WarmAssignment, when non-nil, warm-starts the solve from a prior
	// partition of the same or a similar graph (incremental repartitioning):
	// each recursive bisection seeds its fractional solution with the damped
	// ±1 encoding of the prior parts instead of the origin, skips the
	// cold-start noise, and spends the reduced WarmIterations budget. Entries
	// are prior part ids in [0, K); negative values — conventionally -1 —
	// mean "no prior opinion" and start neutral, while ids >= K are rejected
	// (a prior assignment from a different K is not a usable warm start).
	// The slice may be shorter than g.N() (vertices the base never saw are
	// padded with -1) but not longer.
	// Warm solves run the same projection constraints, rounding and balance
	// repair as cold ones, so the ε-balance guarantee is unchanged. Ignored
	// by PartitionDirect.
	WarmAssignment []int32
	// WarmIterations is the per-bisection gradient budget of warm-started
	// solves (0 = a quarter of Iterations, rounded up): a warm start lands
	// near a good solution, so most of the cold budget would be spent
	// confirming it. Only used when WarmAssignment is set.
	WarmIterations int
	// Reorder selects a vertex-reordering pass applied to the gradient
	// kernel's memory layout at solve time: "none" (or "", the default),
	// "degree", "bfs" or "rcm" — see ReorderNames. Reordering is purely a
	// kernel-layout detail: the permuted CSR keeps every row's arc-summation
	// order, results are scattered back through the inverse permutation, and
	// the partition is byte-identical to an unreordered solve at any
	// Parallelism. Engines that do not run gradient kernels ignore it.
	// Reorder is still folded into Fingerprint: the layout build has a real
	// ingest cost, so two requests that differ only in ordering are distinct
	// requests and never collide on a cache key.
	Reorder string
	// IncrementalGradient switches the GD core to delta gradient updates:
	// once the trajectory settles, each iteration scatters only the moved
	// coordinates' contributions instead of recomputing the full SpMV, with
	// an exact recompute every ResyncEvery iterations. The trajectory between
	// resyncs differs from the full recompute in final ulps, so this is a
	// distinct solver configuration: it is covered by Fingerprint (its own
	// cache entries, its own goldens) and remains bit-identical for a fixed
	// Seed at any Parallelism. Only the gradient-descent engines honor it.
	IncrementalGradient bool
	// ResyncEvery is the incremental-gradient resync period: every this many
	// iterations the gradient is recomputed exactly, bounding floating-point
	// drift (0 = default 16; 1 recomputes every iteration, making the run
	// byte-identical to IncrementalGradient=false). Only used when
	// IncrementalGradient is set.
	ResyncEvery int
	// Kernel32 runs the gradient SpMV through float32 kernels: the iterate
	// and edge weights are rounded to float32 per value — halving the
	// gathered bytes per arc on the bandwidth-bound gradient step — while
	// every row still accumulates in float64 in its original arc order.
	// Results stay bit-identical for a fixed Seed at any Parallelism, but NOT
	// bit-identical to the float64 kernels, so Kernel32 is a distinct solver
	// configuration covered by Fingerprint. Only the gradient engines ("gd",
	// "multilevel") support it — Partition refuses it on any other engine
	// rather than silently splitting cache keys between identical results —
	// and it is mutually exclusive with IncrementalGradient (the delta
	// scatter maintains the float64 gradient).
	Kernel32 bool
	// PrepLayout, when non-nil, injects a prebuilt reorder layout (see
	// PrepareLayout) so gradient engines skip the per-solve layout build when
	// Reorder names the method the layout was prepared for. Injection can
	// never change results — a reordered solve is byte-identical to an
	// unreordered one, and engines re-verify the artifact against the graph
	// being solved — so the field is deliberately EXCLUDED from Fingerprint
	// and passed through Canonical untouched, like Observer.
	PrepLayout *PreparedLayout
	// PrepHierarchy, when non-nil, injects a prebuilt coarsening hierarchy
	// (see PrepareHierarchy) so the "multilevel" and "metis" engines skip
	// their coarsening pass on repeat solves of the same graph. The engines
	// accept it only for the exact graph, seed and coarsening knobs it was
	// built under — anything else rebuilds — which keeps injected solves
	// byte-identical to cold ones. EXCLUDED from Fingerprint, passed through
	// Canonical untouched.
	PrepHierarchy *PreparedHierarchy
	// Observer, when non-nil, is the parent span the solve records its span
	// tree under: per-bisection GD with sampled convergence telemetry
	// (locality trajectory, iterations to 90% of final locality), multilevel
	// coarsen/refine phases, and rounding. Tracing never changes the
	// partition — span structure and attributes are deterministic for a
	// fixed Seed at any Parallelism, only durations vary — and it is
	// deliberately EXCLUDED from Fingerprint and from Canonical's
	// normalization: a traced and an untraced request must share a
	// content-addressed cache entry, so an observer must never split cache
	// keys. Engines without gradient kernels record no engine-level spans.
	Observer *Span
}

// ReorderNames lists the accepted Options.Reorder values, "none" first.
func ReorderNames() []string { return reorder.Names() }

// ValidateReorder reports whether name is an accepted Options.Reorder value
// ("" selects none). Used by front ends to fail fast on typos.
func ValidateReorder(name string) error {
	_, err := reorder.Parse(name)
	return err
}

// Canonical returns the options with every defaulted field made explicit:
// Engine resolves to its registry name (the deprecated Multilevel flag
// canonicalizes to Engine = "multilevel", so both spellings fingerprint
// identically), K, Epsilon, Iterations, StepLength and Projection take their
// documented defaults, and the multilevel knobs are normalized — filled in
// for the multilevel engine, zeroed otherwise (they have no effect then).
// Partition(g, o) and Partition(g, o.Canonical()) produce identical results.
// Weights, Parallelism, Observer and the prep-artifact injections
// (PrepLayout, PrepHierarchy) are passed through untouched.
func (o Options) Canonical() Options {
	if o.Engine == "" {
		o.Engine = DefaultEngine
		if o.Multilevel {
			o.Engine = "multilevel"
		}
	}
	// Multilevel is only the alias: recompute it from the resolved engine so
	// an explicit Engine plus a stale Multilevel flag cannot disagree.
	o.Multilevel = o.Engine == "multilevel"
	if o.K == 0 {
		o.K = 2
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 0.05
	}
	if o.Iterations <= 0 {
		o.Iterations = 100
	}
	if o.StepLength <= 0 {
		o.StepLength = 2
	}
	if o.Projection == "" {
		o.Projection = project.AlternatingOneShot.String()
	}
	if o.Multilevel {
		if o.CoarsenTo <= 0 {
			o.CoarsenTo = 8000
		}
		if o.ClusterSize <= 0 {
			o.ClusterSize = 32
		}
		if o.RefineIterations <= 0 {
			o.RefineIterations = 16
		}
	} else {
		o.CoarsenTo, o.ClusterSize, o.RefineIterations = 0, 0, 0
	}
	if o.WarmAssignment != nil {
		if o.WarmIterations <= 0 {
			o.WarmIterations = (o.Iterations + 3) / 4
		}
	} else {
		o.WarmIterations = 0 // inert without a warm assignment
	}
	if o.Reorder == "" {
		o.Reorder = reorder.None.String()
	}
	if o.IncrementalGradient {
		if o.ResyncEvery <= 0 {
			o.ResyncEvery = 16
		}
	} else {
		o.ResyncEvery = 0 // inert without the incremental path
	}
	return o
}

// Fingerprint returns a stable hex digest of the canonicalized options —
// the options half of a content-addressed cache key (pair it with
// Graph.HashString for the graph half). Two option values that lead to the
// same partition fingerprint identically: defaults are made explicit via
// Canonical (so the deprecated Multilevel alias fingerprints the same as
// Engine = "multilevel"), and Parallelism is excluded because results are
// bit-identical at any worker count — as are the prep-artifact injections
// (PrepLayout, PrepHierarchy), which amortize preprocessing without changing
// a single output bit. Kernel32 IS covered: the float32 kernels produce
// different (equally deterministic) bits. The engine name is always covered, so
// distinct engines can never share a cache entry for the same graph.
// Weights vectors and the WarmAssignment, when set, contribute their exact
// contents: a warm-started solve follows a different trajectory than a cold
// one, so the two must never share a cache entry.
func (o Options) Fingerprint() string {
	c := o.Canonical()
	h := sha256.New()
	fmt.Fprintf(h, "engine=%s|k=%d|eps=%g|iters=%d|step=%g|proj=%s|seed=%d|noadapt=%t|nofix=%t|coarsen=%d|cluster=%d|refine=%d|warmiters=%d|reorder=%s|incgrad=%t|resync=%d|dims=%d",
		c.Engine, c.K, c.Epsilon, c.Iterations, c.StepLength, c.Projection, c.Seed,
		c.DisableAdaptiveStep, c.DisableVertexFixing,
		c.CoarsenTo, c.ClusterSize, c.RefineIterations,
		c.WarmIterations, c.Reorder, c.IncrementalGradient, c.ResyncEvery, len(c.Weights))
	// Kernel32 selects numerically different (float32-rounded) kernels, so it
	// must split cache keys — but only when set, so every pre-existing
	// fingerprint (and golden) is unchanged for the default float64 kernels.
	if c.Kernel32 {
		fmt.Fprint(h, "|kernel32=true")
	}
	var buf [8]byte
	for _, w := range c.Weights {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(w)))
		h.Write(buf[:])
		for _, x := range w {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			h.Write(buf[:])
		}
	}
	if c.WarmAssignment != nil {
		fmt.Fprintf(h, "|warm=%d|", len(c.WarmAssignment))
		var b4 [4]byte
		for _, p := range c.WarmAssignment {
			binary.LittleEndian.PutUint32(b4[:], uint32(p))
			h.Write(b4[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Result reports a partition and its quality.
type Result struct {
	// Assignment maps each vertex to its part.
	Assignment *Assignment
	// EdgeLocality is the fraction of uncut edges (higher is better).
	EdgeLocality float64
	// CutEdges is the number of edges crossing parts.
	CutEdges int64
	// Imbalances is max/avg − 1 per weight dimension.
	Imbalances []float64
}

// Partition splits g into Options.K balanced parts maximizing edge
// locality, dispatching to the engine Options.Engine names (default "gd").
// Unknown engines are an error, as is a warm-started request
// (Options.WarmAssignment) naming an engine without warm-start capability —
// front ends that prefer degradation over failure (the daemon's delta path)
// should check Engines() and drop the warm start themselves.
func Partition(g *Graph, opts Options) (*Result, error) {
	c := opts.Canonical()
	if c.K < 1 {
		return nil, fmt.Errorf("mdbgp: K = %d, want >= 1", c.K)
	}
	eng, err := LookupEngine(c.Engine)
	if err != nil {
		return nil, err
	}
	// Reorder is validated centrally so engines that ignore it (no gradient
	// kernels) still reject typos instead of silently solving.
	if err := ValidateReorder(c.Reorder); err != nil {
		return nil, err
	}
	if c.WarmAssignment != nil && !eng.Info().WarmStart {
		return nil, fmt.Errorf("mdbgp: engine %q does not support warm starts; solve cold or use a warm-capable engine", c.Engine)
	}
	if c.Kernel32 {
		// Refuse rather than ignore: Kernel32 is fingerprinted, so an engine
		// silently ignoring it would split cache keys between byte-identical
		// results — and accepting it alongside the incremental gradient would
		// break the resync contract (the delta scatter maintains the float64
		// gradient the 32-bit recompute disagrees with).
		if !eng.Info().Kernel32 {
			return nil, fmt.Errorf("mdbgp: engine %q does not support the float32 kernels (Kernel32); use a gradient engine", c.Engine)
		}
		if c.IncrementalGradient {
			return nil, fmt.Errorf("mdbgp: Kernel32 and IncrementalGradient are mutually exclusive")
		}
	}
	return eng.Solve(g, c)
}

// PartitionWarm partitions g starting from a prior assignment of the same
// or a similar graph — the incremental-repartitioning entry point. It is
// Partition with Options.WarmAssignment set to warm: typically the cached
// assignment of a base graph, applied to ApplyEdgeDelta's materialization of
// the updated graph. warm may be shorter than g.N() (new vertices start
// neutral) but not longer; see Options.WarmAssignment for the semantics.
func PartitionWarm(g *Graph, warm []int32, opts Options) (*Result, error) {
	opts.WarmAssignment = warm
	return Partition(g, opts)
}

// WarmAssignmentError reports an invalid Options.WarmAssignment: a part id
// outside [0, K) that is not the -1 no-opinion marker, or a slice longer
// than the graph. It is a client-input error, not a solver fault — front
// ends match it with errors.As to answer 400 instead of 500.
type WarmAssignmentError struct {
	// Vertex and Part identify the offending entry; Vertex is -1 for
	// slice-length errors.
	Vertex int
	Part   int32
	// K is the requested part count the entry was validated against.
	K int
	// Len and N describe a slice-length error (warm longer than the graph).
	Len, N int
}

func (e *WarmAssignmentError) Error() string {
	if e.Vertex < 0 {
		return fmt.Sprintf("mdbgp: warm assignment has %d entries, graph has %d vertices", e.Len, e.N)
	}
	if e.Part < -1 {
		return fmt.Sprintf("mdbgp: warm assignment part %d at vertex %d is negative (only -1 means \"no prior opinion\")", e.Part, e.Vertex)
	}
	return fmt.Sprintf("mdbgp: warm assignment part %d at vertex %d is outside [0, K=%d) — was the base solved with a different K?", e.Part, e.Vertex, e.K)
}

// ValidateWarmAssignment checks a prospective Options.WarmAssignment against
// a graph of n vertices and a part count of k, returning a
// *WarmAssignmentError describing the first violation. Entries must be prior
// part ids in [0, k) or the -1 no-opinion marker: ids >= k mean the prior
// solve used a different K, ids below -1 are corrupt, and either would feed
// garbage into the damped warm start rather than a usable prior. The slice
// may be shorter than n (missing vertices start neutral) but not longer.
func ValidateWarmAssignment(warm []int32, n, k int) error {
	if len(warm) > n {
		return &WarmAssignmentError{Vertex: -1, K: k, Len: len(warm), N: n}
	}
	for v, p := range warm {
		if int(p) >= k || p < -1 {
			return &WarmAssignmentError{Vertex: v, Part: p, K: k}
		}
	}
	return nil
}

// padWarm validates a warm assignment (see ValidateWarmAssignment — ids
// outside [0, k) are rejected rather than treated as neutral, because
// silently degrading most of the graph to a no-opinion warm start at the
// reduced warm budget produces a drastically worse partition than a cold
// solve would) and pads missing tail entries with -1 (no prior opinion).
func padWarm(warm []int32, n, k int) ([]int32, error) {
	if err := ValidateWarmAssignment(warm, n, k); err != nil {
		return nil, err
	}
	if len(warm) == n {
		return warm, nil
	}
	padded := make([]int32, n)
	copy(padded, warm)
	for i := len(warm); i < n; i++ {
		padded[i] = -1
	}
	return padded, nil
}

// EdgeLocality returns the fraction of uncut edges of an assignment.
func EdgeLocality(g *Graph, a *Assignment) float64 { return partition.EdgeLocality(g, a) }

// Imbalance returns max/avg − 1 of the per-part totals of w.
func Imbalance(a *Assignment, w []float64) float64 { return partition.Imbalance(a, w) }

// MaxImbalance returns the worst Imbalance across weight dimensions.
func MaxImbalance(a *Assignment, ws [][]float64) float64 { return partition.MaxImbalance(a, ws) }

// IsBalanced reports whether the assignment is ε-balanced in every
// dimension.
func IsBalanced(a *Assignment, ws [][]float64, eps float64) bool {
	return partition.IsBalanced(a, ws, eps)
}

// SocialGraphConfig configures the synthetic social-network generator (a
// degree-corrected hierarchical stochastic block model).
type SocialGraphConfig = gen.SBMConfig

// GenerateSocialGraph produces a synthetic social network and the planted
// community of each vertex. Deterministic in cfg.Seed.
func GenerateSocialGraph(cfg SocialGraphConfig) (*Graph, []int32) { return gen.SBM(cfg) }

// GenerateRMAT produces a 2^scale-vertex R-MAT graph.
func GenerateRMAT(scale, edgeFactor int, a, b, c float64, seed int64) *Graph {
	return gen.RMAT(scale, edgeFactor, a, b, c, seed)
}
